//===- ml/Labeler.h - Threshold labeling of raw block records ---*- C++ -*-===//
///
/// \file
/// Turns raw (features, cost-without-scheduling, cost-with-scheduling)
/// block records into labeled training instances, implementing the paper's
/// threshold rule (§2.2): label LS when list scheduling is more than t%
/// better than not scheduling, NS when scheduling is not better at all, and
/// produce *no instance* when the benefit lies in (0, t] — the paper's
/// noise-filtering device.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ML_LABELER_H
#define SCHEDFILTER_ML_LABELER_H

#include "ml/Dataset.h"

#include <functional>
#include <optional>

namespace schedfilter {

/// Raw per-block record emitted by the instrumented scheduler: features,
/// simulated cost unscheduled and list-scheduled, and the profile weight.
struct BlockRecord {
  FeatureVector X;
  uint64_t CostNoSched = 0;
  uint64_t CostSched = 0;
  uint64_t ExecCount = 1;
};

/// Percentage improvement of scheduling for \p R:
/// 100 * (CostNoSched - CostSched) / CostNoSched.  Negative when scheduling
/// degrades the block.  Returns 0 for a zero-cost block.
double schedulingBenefitPercent(const BlockRecord &R);

/// Applies the paper's labeling rule with threshold \p ThresholdPct:
/// returns LS if benefit > t, NS if benefit <= 0, and nullopt otherwise
/// (the instance is dropped from training).
std::optional<Label> labelWithThreshold(const BlockRecord &R,
                                        double ThresholdPct);

/// Labels every record of \p Records at threshold \p ThresholdPct, dropping
/// the (0, t] band, and returns the resulting dataset named \p Name.
Dataset buildDataset(const std::vector<BlockRecord> &Records,
                     double ThresholdPct, const std::string &Name);

/// Post-threshold transform of one record's verdict (nullopt = no
/// training instance): label-noise sources and band-handling ablations
/// plug in here, downstream of the threshold rule and upstream of
/// Dataset assembly.  \p RecordIndex is the record's index in its run's
/// trace, the key deterministic noise forks per-record streams from.
using LabelTransform = std::function<std::optional<Label>(
    std::optional<Label> L, const BlockRecord &Rec, size_t RecordIndex)>;

/// buildDataset with \p Transform applied to every record's threshold
/// verdict.  A null transform is the plain overload.
Dataset buildDataset(const std::vector<BlockRecord> &Records,
                     double ThresholdPct, const std::string &Name,
                     const LabelTransform &Transform);

} // namespace schedfilter

#endif // SCHEDFILTER_ML_LABELER_H
