//===- ml/OnlineTrainer.h - Serve-time corpus + retrain policy --*- C++ -*-===//
///
/// \file
/// The learning half of the online-adaptation loop (ROADMAP item 4): the
/// optimizing tier traces the methods it compiles (runtime/MethodCompiler
/// traceMethod), those raw BlockRecords accumulate here, and a
/// RetrainPolicy driven purely by the virtual clock decides when the
/// corpus is retrained into the next filter version.  Nothing in this
/// file reads wall time or a std engine: a given (seed, config) pair
/// reproduces the exact sequence of retrain triggers, which is what makes
/// the serving loop's swap sequence byte-identical at any --jobs.
///
/// Layering: this is ml/ code -- it knows Labeler's threshold rule and
/// Ripper, but nothing about epochs, queues, or services.  The runtime
/// layer owns *when* absorb/maybeRetrain are called (always from its
/// serial install path); persistence of the resulting versions is
/// io/FilterRegistry's job.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ML_ONLINETRAINER_H
#define SCHEDFILTER_ML_ONLINETRAINER_H

#include "filter/FilterVersion.h"
#include "ml/Labeler.h"
#include "ml/Ripper.h"

namespace schedfilter {

class TaskPool;

/// Grow-only store of raw labeled-trace material.  Records append in the
/// caller's (deterministic) order; the accumulator never reorders or
/// dedups, so the labeled dataset it yields is a pure function of the
/// append sequence.
class CorpusAccumulator {
public:
  /// Installs the pre-serve training corpus (e.g. the records the initial
  /// factory filter trained on), replacing any current contents.
  void seed(std::vector<BlockRecord> Records) {
    Store = std::move(Records);
    TrainedMark = Store.size();
  }

  /// Appends serve-time records (one optimizing-tier compile's trace).
  void append(const std::vector<BlockRecord> &Records) {
    Store.insert(Store.end(), Records.begin(), Records.end());
  }

  size_t size() const { return Store.size(); }

  /// Records appended since the last markTrained() (what a retrain would
  /// newly learn from).
  size_t newSinceTrain() const { return Store.size() - TrainedMark; }

  /// Labels the whole corpus at \p ThresholdPct (the paper's threshold
  /// rule, (0, t] band dropped) into a dataset named \p Name.
  Dataset label(double ThresholdPct, const std::string &Name) const {
    return buildDataset(Store, ThresholdPct, Name);
  }

  /// Marks the current contents as consumed by a train.
  void markTrained() { TrainedMark = Store.size(); }

private:
  std::vector<BlockRecord> Store;
  size_t TrainedMark = 0;
};

/// When to retrain, as a pure function of the virtual clock.  No wall
/// time, no randomness: the trigger sequence is replayable from config.
struct RetrainPolicy {
  /// Minimum virtual ticks between retrain triggers (and before the
  /// first, measured from tick 0 where the initial version installed).
  uint64_t RetrainEvery = 8192;
  /// Minimum newly-accumulated records for a trigger to fire (an idle
  /// interval with nothing new to learn from retrains nothing).
  uint64_t MinNewRecords = 1;

  bool shouldRetrain(uint64_t Tick, uint64_t LastTriggerTick,
                     size_t NewRecords) const {
    return Tick - LastTriggerTick >= RetrainEvery &&
           NewRecords >= MinNewRecords;
  }
};

/// Bundles the accumulator and policy into the object a serving loop
/// holds: feed it traces, ask it at epoch boundaries whether a new filter
/// version is due, and it trains one (on the shared pool -- bit-identical
/// at any job count) stamped with full provenance.
class OnlineTrainer {
public:
  /// \p Pool is borrowed for Ripper's pooled training; \p ThresholdPct is
  /// the labeling threshold every retrain uses (the serve run's -t).
  OnlineTrainer(TaskPool &Pool, double ThresholdPct, RetrainPolicy Policy)
      : Pool(Pool), ThresholdPct(ThresholdPct), Policy(Policy) {}

  /// Installs the pre-serve corpus (see CorpusAccumulator::seed).
  void seedCorpus(std::vector<BlockRecord> Records) {
    Corpus.seed(std::move(Records));
  }

  /// Absorbs one compile's trace records.  Call from a serial,
  /// deterministic-order path only (the service's install loop).
  void absorb(const std::vector<BlockRecord> &Records) {
    Corpus.append(Records);
  }

  const CorpusAccumulator &corpus() const { return Corpus; }
  const RetrainPolicy &policy() const { return Policy; }

  /// If the policy fires at virtual tick \p Tick, trains version
  /// CurrentVersion+1 on the full corpus and returns it; otherwise null.
  /// The artifact records the trigger tick and corpus size as provenance.
  FilterArtifactRef maybeRetrain(uint64_t Tick, uint32_t CurrentVersion);

private:
  TaskPool &Pool;
  double ThresholdPct;
  RetrainPolicy Policy;
  CorpusAccumulator Corpus;
  uint64_t LastTriggerTick = 0;
};

} // namespace schedfilter

#endif // SCHEDFILTER_ML_ONLINETRAINER_H
