//===- ml/Metrics.h - Classifier evaluation ----------------------*- C++ -*-===//
///
/// \file
/// Evaluation metrics for induced filters: the classification error rates
/// of the paper's Table 3 plus the supporting confusion-matrix counts used
/// by Table 6 and the tests.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ML_METRICS_H
#define SCHEDFILTER_ML_METRICS_H

#include "ml/Rule.h"

namespace schedfilter {

/// 2x2 confusion counts for the LS/NS problem ("positive" = LS).
struct ConfusionMatrix {
  size_t TruePos = 0;  ///< actual LS, predicted LS
  size_t FalsePos = 0; ///< actual NS, predicted LS
  size_t TrueNeg = 0;  ///< actual NS, predicted NS
  size_t FalseNeg = 0; ///< actual LS, predicted NS

  size_t total() const { return TruePos + FalsePos + TrueNeg + FalseNeg; }
  size_t errors() const { return FalsePos + FalseNeg; }

  /// Fraction misclassified in [0, 1]; 0 for an empty matrix.
  double errorRate() const;

  /// Precision and recall of the LS class (0 when undefined).
  double precision() const;
  double recall() const;
};

/// Evaluates \p RS on every instance of \p Data.
ConfusionMatrix evaluate(const RuleSet &RS, const Dataset &Data);

/// Convenience: percent misclassified (Table 3's unit).
double errorRatePercent(const RuleSet &RS, const Dataset &Data);

} // namespace schedfilter

#endif // SCHEDFILTER_ML_METRICS_H
