//===- ml/Ripper.cpp - RIPPER rule induction --------------------------------===//
//
// The indexed training engine.  The naive trainer re-sorted every feature
// column for every candidate condition of every grown rule; this one
// sorts each feature column exactly once per train() call over a flat
// Dataset::ColumnView and keeps everything downstream sort-free:
//
//  - The *grow universe* (instances a rule may be grown over) is held per
//    feature in value order and shrunk as rules claim coverage, so
//    materializing a rule's covered set is a filtered walk, never a walk
//    of the whole dataset.
//  - Grow-phase coverage is an L1-resident bit-set (one bit per
//    instance), cleared in O(n/64) per rule and filtered per condition.
//  - Finding the best FOIL condition is a sweep over the presorted
//    covered entries, O(features x covered) per condition instead of
//    O(features x covered log covered), with an FP-sound upper bound
//    (gain <= P * -BaseInfo) skipping provably-losing candidates.
//  - Rule-set coverage for the MDL bookkeeping (totalDL, optimizePass,
//    rule deletion) is computed through per-rule coverage bitmasks that
//    the call sites OR incrementally instead of re-evaluating every rule
//    per instance.
//
// Per-feature sweeps optionally fan out across a shared TaskPool; the
// argmax is reduced in feature order with the exact strict-greater tie
// policy of the serial sweep, so the induced RuleSet is bit-for-bit
// identical at any job count and to the pre-index implementation
// (tests/ripper_engine_test.cpp pins both; bench_train_scale tracks the
// speedup in BENCH_train_scale.json).
//
//===----------------------------------------------------------------------===//

#include "ml/Ripper.h"

#include "support/TaskPool.h"

#include <algorithm>
#include <atomic>
#include <cmath>

using namespace schedfilter;

namespace {

/// Index-based view: all algorithms below manipulate vectors of instance
/// indices into one Dataset.
using IndexList = std::vector<int>;

/// Thread-safe lgamma: the C lgamma() stores the gamma function's sign
/// in the global `signgam`, which is a data race when pool workers train
/// concurrently (ThreadSanitizer flags it).  lgamma_r returns the same
/// bits with the sign in an out-parameter instead.  All call sites pass
/// arguments >= 1, so the discarded sign is always +1.
double logGamma(double X) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int Sign;
  return lgamma_r(X, &Sign);
#else
  return std::lgamma(X);
#endif
}

/// log2 of the binomial coefficient C(n, k), via lgamma for stability.
double log2Binomial(size_t N, size_t K) {
  if (K > N)
    return 0.0;
  double L = logGamma(static_cast<double>(N) + 1.0) -
             logGamma(static_cast<double>(K) + 1.0) -
             logGamma(static_cast<double>(N - K) + 1.0);
  return L / std::log(2.0);
}

/// Bits to identify which K of N elements are exceptions (Quinlan-style
/// two-part exception code).
double subsetDL(size_t N, size_t K) {
  if (N == 0)
    return 0.0;
  return std::log2(static_cast<double>(N) + 1.0) + log2Binomial(N, K);
}

/// Deterministic Fisher-Yates shuffle.
void shuffle(IndexList &V, Rng &R) {
  for (size_t I = V.size(); I > 1; --I)
    std::swap(V[I - 1], V[R.below(static_cast<uint32_t>(I))]);
}

/// One feature's best candidate from a value-order sweep; reduced across
/// features in index order.
struct FeatureBest {
  double Gain = 0.0;
  double Value = 0.0;
  bool IsLessEqual = true;
  bool Found = false;
};

/// One covered instance in a feature's value order: the feature value, the
/// instance index (for bit-set filtering) and its class, packed so the
/// per-condition sweep is a purely sequential walk.
struct ColEntry {
  double Val;
  int32_t Idx;
  int32_t Pos;
};

/// THE ordering of this engine: ascending value, ties by instance index.
/// Every sorted structure (the global column index, universe lists,
/// covered lists) uses exactly this relation -- the bit-identity contract
/// depends on there being one definition.
bool entryLess(const ColEntry &A, const ColEntry &B) {
  if (A.Val != B.Val)
    return A.Val < B.Val;
  return A.Idx < B.Idx;
}

/// Materialization strategy: walking a presorted list of \p Walkable
/// candidates beats gathering and sorting \p Members members when it
/// costs less than ~2 comparisons per sorted element.  Depends only on
/// sizes, so job count never affects the choice (both strategies produce
/// the entryLess order either way).
bool preferWalk(size_t Walkable, size_t Members) {
  return static_cast<double>(Walkable) <=
         2.0 * static_cast<double>(Members) *
             std::log2(static_cast<double>(Members) + 2.0);
}

/// The whole learning state threaded through the helper routines: the
/// immutable column indexes built once per train() call, plus reusable
/// coverage and mask scratch.
struct Trainer {
  const RipperOptions &Opts;
  Label Target;
  TaskPool *Pool; // may be null: run every feature loop inline
  double CondSpaceBits; // log2(#possible conditions), for the theory DL

  // --- Immutable per-train() indexes. ---
  ColumnView Cols;
  /// IsPos[i]: instance i's label equals the target class.
  std::vector<uint8_t> IsPos;
  /// Order[F * n + k]: the instance at position k when feature F's column
  /// is sorted ascending (ties broken by instance index, for determinism).
  std::vector<int32_t> Order;

  // --- Coverage-set scratch (reused across every grown rule; no
  // --- steady-state allocations). ---
  /// Bit i set iff instance i is in the current covered set.  One bit per
  /// instance keeps the whole set L1-resident (2 KB at 16k instances --
  /// the epoch-stamped uint64 variant measured 3x slower on the gather-
  /// heavy index walks), and resetting is an O(n/64) fill.
  std::vector<uint64_t> CovBits;
  /// The covered set as a list (stable instance order), for re-marking.
  std::vector<int32_t> CovList;
  /// The grow *universe*: the instances a rule may currently be grown
  /// over (buildRuleList: the not-yet-covered remainder; optimizePass:
  /// the instances reaching the rule under revision).  Kept per feature
  /// in value order and shrunk as rules claim coverage, so growRule walks
  /// O(|universe|), never O(n), to materialize its covered set.
  std::vector<std::vector<ColEntry>> UniverseOrd;
  std::vector<uint64_t> UniverseBits;
  std::vector<int32_t> UniverseList;
  /// Per feature: the covered instances in that feature's sorted value
  /// order.  Rebuilt per grown rule, filtered in place per condition.
  std::vector<std::vector<ColEntry>> OrderedCov;
  /// Per-feature sweep results (index-owned slots for the pool).
  std::vector<FeatureBest> FeatureResults;
  /// Prune-split instances still matched by the rule prefix under
  /// evaluation (incremental pruneRule).
  std::vector<int32_t> PrunePosCur, PruneNegCur;
  /// Bitmask scratch for rule-coverage counting (totalDL, optimizePass):
  /// one bit per instance, branchless column scans instead of per-instance
  /// rule evaluation.  The counted memberships are identical.
  std::vector<uint64_t> RuleMaskScratch, AnyMaskScratch, PrevMaskScratch;

  /// Fan per-feature work out only when each feature has enough covered
  /// instances to amortize the fork; below this, inline is faster.  A
  /// wall-clock knob only: results are identical either way.
  static constexpr size_t ParallelMinCovered = 2048;

  Trainer(const Dataset &Data, const RipperOptions &O, Label Tgt,
          TaskPool *P)
      : Opts(O), Target(Tgt), Pool(P), Cols(Data.columns()) {
    size_t N = Cols.NumInstances;
    IsPos.resize(N);
    for (size_t I = 0; I != N; ++I)
      IsPos[I] = Cols.Labels[I] == Target;
    CovBits.assign((N + 63) / 64, 0);
    UniverseOrd.resize(NumFeatures);
    OrderedCov.resize(NumFeatures);
    FeatureResults.resize(NumFeatures);

    // Sort each feature column once and count distinct values.  The
    // condition space is two operators per distinct (feature, value) pair
    // present in the data, exactly the count the old per-feature std::set
    // produced.
    Order.resize(static_cast<size_t>(NumFeatures) * N);
    std::vector<size_t> DistinctPerFeature(NumFeatures, 0);
    forEachFeature(N, [&](unsigned F) {
      const double *Col = Cols.col(F);
      int32_t *OrderF = Order.data() + static_cast<size_t>(F) * N;
      for (size_t I = 0; I != N; ++I)
        OrderF[I] = static_cast<int32_t>(I);
      std::sort(OrderF, OrderF + N, [Col](int32_t A, int32_t B) {
        if (Col[A] != Col[B])
          return Col[A] < Col[B];
        return A < B;
      });
      size_t Distinct = 0;
      for (size_t K = 0; K != N; ++K)
        if (K == 0 || Col[OrderF[K]] != Col[OrderF[K - 1]])
          ++Distinct;
      DistinctPerFeature[F] = Distinct;
    });
    size_t NumConds = 0;
    for (size_t Distinct : DistinctPerFeature)
      NumConds += 2 * Distinct;
    CondSpaceBits =
        std::log2(std::max<double>(2.0, static_cast<double>(NumConds)));
  }

  /// Runs \p Body(F) for every feature, on the pool when one is attached
  /// and \p PerFeatureWork is large enough to pay for the fan-out.  Bodies
  /// write only feature-owned state and the reduction happens at the call
  /// site in feature order, so job count never changes results.
  template <typename Fn>
  void forEachFeature(size_t PerFeatureWork, const Fn &Body) {
    if (Pool && Pool->jobs() > 1 && PerFeatureWork >= ParallelMinCovered) {
      Pool->parallelFor(NumFeatures,
                        [&](size_t F) { Body(static_cast<unsigned>(F)); });
      return;
    }
    for (unsigned F = 0; F != NumFeatures; ++F)
      Body(F);
  }

  /// Does instance \p I satisfy \p C?  Compares the same doubles as
  /// Condition::matches against the row-major FeatureVector.
  bool condMatches(const Condition &C, int32_t I) const {
    double V = Cols.col(C.Feature)[static_cast<size_t>(I)];
    return C.IsLessEqual ? V <= C.Threshold : V >= C.Threshold;
  }

  /// Does instance \p I satisfy every condition of \p R?
  bool ruleMatches(const Rule &R, int32_t I) const {
    for (const Condition &C : R.Conditions)
      if (!condMatches(C, I))
        return false;
    return true;
  }

  /// Counts how many of (\p Pos, \p Neg) the rule matches, split by class.
  void countCoverage(const Rule &R, const IndexList &Pos,
                     const IndexList &Neg, size_t &P, size_t &N) const {
    P = N = 0;
    for (int I : Pos)
      if (ruleMatches(R, I))
        ++P;
    for (int I : Neg)
      if (ruleMatches(R, I))
        ++N;
  }

  /// Theory cost of one rule (Cohen's redundancy-adjusted encoding).
  double ruleDL(const Rule &R) const {
    double K = static_cast<double>(R.size());
    return 0.5 * (std::log2(K + 1.0) + K * CondSpaceBits);
  }

  /// Fills \p Mask with one bit per instance: set iff the instance
  /// satisfies every condition of \p R.  Each condition is a branchless
  /// sequential scan of its column; the memberships are exactly those of
  /// per-instance rule evaluation.  Bits past the instance count may be
  /// set and must not be read.
  void ruleMask(const Rule &R, std::vector<uint64_t> &Mask) const {
    size_t N = Cols.NumInstances;
    size_t Words = (N + 63) / 64;
    Mask.assign(Words, ~0ull);
    for (const Condition &C : R.Conditions) {
      const double *Col = Cols.col(C.Feature);
      double T = C.Threshold;
      for (size_t W = 0; W != Words; ++W) {
        size_t Base = W * 64;
        size_t End = std::min<size_t>(64, N - Base);
        uint64_t M = 0;
        if (C.IsLessEqual) {
          for (size_t B = 0; B != End; ++B)
            M |= static_cast<uint64_t>(Col[Base + B] <= T) << B;
        } else {
          for (size_t B = 0; B != End; ++B)
            M |= static_cast<uint64_t>(Col[Base + B] >= T) << B;
        }
        Mask[W] &= M;
      }
    }
  }

  /// Fills \p Any with the union of every rule's coverage mask.
  void anyRuleMask(const std::vector<Rule> &Rules,
                   std::vector<uint64_t> &Any) {
    size_t Words = (Cols.NumInstances + 63) / 64;
    Any.assign(Words, 0);
    for (const Rule &R : Rules) {
      ruleMask(R, RuleMaskScratch);
      for (size_t W = 0; W != Words; ++W)
        Any[W] |= RuleMaskScratch[W];
    }
  }

  static bool maskBit(const std::vector<uint64_t> &Mask, int I) {
    return (Mask[static_cast<size_t>(I) >> 6] >>
            (static_cast<size_t>(I) & 63)) &
           1;
  }

  static void orInto(std::vector<uint64_t> &Dst,
                     const std::vector<uint64_t> &Src) {
    for (size_t W = 0; W != Dst.size(); ++W)
      Dst[W] |= Src[W];
  }

  /// Description length given a precomputed covered-by-any mask: exception
  /// bits from the coverage counts over (\p Pos, \p Neg) plus theory bits
  /// for every rule of \p Rules except index \p Skip (pass
  /// Rules.size() to include all) -- accumulated in list order, exactly as
  /// the direct computation would.
  double dlFromMask(const std::vector<uint64_t> &Any,
                    const std::vector<Rule> &Rules, size_t Skip,
                    const IndexList &Pos, const IndexList &Neg) const {
    size_t Covered = 0, FP = 0, FN = 0;
    for (int I : Pos) {
      if (maskBit(Any, I))
        ++Covered;
      else
        ++FN;
    }
    for (int I : Neg) {
      if (maskBit(Any, I)) {
        ++Covered;
        ++FP;
      }
    }
    size_t Total = Pos.size() + Neg.size();
    double DL = subsetDL(Covered, FP) + subsetDL(Total - Covered, FN);
    for (size_t R = 0; R != Rules.size(); ++R)
      if (R != Skip)
        DL += ruleDL(Rules[R]);
    return DL;
  }

  /// Stratified grow/prune split of (Pos, Neg).
  void splitGrowPrune(const IndexList &Pos, const IndexList &Neg, Rng &R,
                      IndexList &GrowPos, IndexList &GrowNeg,
                      IndexList &PrunePos, IndexList &PruneNeg) const {
    IndexList P = Pos, N = Neg;
    shuffle(P, R);
    shuffle(N, R);
    size_t PG = static_cast<size_t>(
        std::ceil(Opts.GrowFraction * static_cast<double>(P.size())));
    size_t NG = static_cast<size_t>(
        std::ceil(Opts.GrowFraction * static_cast<double>(N.size())));
    GrowPos.assign(P.begin(), P.begin() + static_cast<long>(PG));
    PrunePos.assign(P.begin() + static_cast<long>(PG), P.end());
    GrowNeg.assign(N.begin(), N.begin() + static_cast<long>(NG));
    PruneNeg.assign(N.begin() + static_cast<long>(NG), N.end());
  }

  /// Sweeps feature \p F's covered instances in presorted value order and
  /// records the best candidate threshold by FOIL information gain.  The
  /// prefix counts (P, N with value <= v) are exactly what the old
  /// sort-per-condition sweep counted; the gain expression and the
  /// strict-greater tie policy are unchanged, so the winner is too.
  ///
  /// \p Hint carries the largest gain any feature's sweep has *exactly*
  /// achieved so far (monotone; updated as features finish).  Since
  /// log2(P/(P+N)) <= 0 and FP subtraction/multiplication are
  /// rounding-monotone, P * (0 - BaseInfo) is a true upper bound on a
  /// candidate's gain -- so a candidate whose bound cannot strictly beat
  /// this feature's best, nor strictly reach the hint, is skipped without
  /// evaluating the log.  Skipped candidates are strictly below some
  /// exactly-achieved gain, so no reported winner (and no tie-break)
  /// ever changes: results are bit-identical with the hint arriving in
  /// any order, including not at all.
  void scanFeature(unsigned F, size_t P0, size_t N0, double BaseInfo,
                   std::atomic<double> &Hint, FeatureBest &Out) const {
    const std::vector<ColEntry> &Ord = OrderedCov[F];
    double BestGain = 1e-9;
    double HintGain = Hint.load(std::memory_order_relaxed);
    double NegBase = 0.0 - BaseInfo; // >= 0: BaseInfo = log2(ratio <= 1)
    FeatureBest Best;
    size_t PrefP = 0, PrefN = 0;
    for (size_t K = 0; K != Ord.size();) {
      double V = Ord[K].Val;
      // One distinct-value group: count its positives/negatives.
      size_t GP = 0, GN = 0;
      while (K != Ord.size() && Ord[K].Val == V) {
        GP += static_cast<size_t>(Ord[K].Pos);
        GN += static_cast<size_t>(1 - Ord[K].Pos);
        ++K;
      }
      PrefP += GP;
      PrefN += GN;
      auto Consider = [&](bool IsLE, size_t P, size_t N) {
        if (P == 0)
          return;
        if (P + N == P0 + N0)
          return; // excludes nothing; useless condition
        double Bound = static_cast<double>(P) * NegBase;
        if (Bound <= BestGain || Bound < HintGain)
          return; // provably cannot beat a winner
        double Gain =
            static_cast<double>(P) *
            (std::log2(static_cast<double>(P) / static_cast<double>(P + N)) -
             BaseInfo);
        if (Gain > BestGain) {
          BestGain = Gain;
          Best = {Gain, V, IsLE, true};
        }
      };
      // X[F] <= V keeps the prefix (group included).
      Consider(true, PrefP, PrefN);
      // X[F] >= V keeps this value group and the suffix.
      Consider(false, P0 - (PrefP - GP), N0 - (PrefN - GN));
    }
    Out = Best;
    // Publish this feature's exactly-achieved gain for later sweeps.
    double Cur = Hint.load(std::memory_order_relaxed);
    while (BestGain > Cur &&
           !Hint.compare_exchange_weak(Cur, BestGain,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Finds the single condition with the highest FOIL information gain
  /// over the currently covered grow instances (\p CovP positives,
  /// \p CovN negatives).  Per-feature sweeps run independently -- on the
  /// pool when attached -- and the argmax is reduced in feature order
  /// with the serial sweep's strict-greater policy (lowest feature index
  /// wins ties).  Returns false when no condition has positive gain (or
  /// none excludes anything).
  bool findBestCondition(size_t CovP, size_t CovN, Condition &Best) {
    size_t P0 = CovP, N0 = CovN;
    if (P0 == 0)
      return false;
    double BaseInfo = std::log2(static_cast<double>(P0) /
                                static_cast<double>(P0 + N0));
    std::atomic<double> Hint{1e-9};
    forEachFeature(P0 + N0, [&](unsigned F) {
      scanFeature(F, P0, N0, BaseInfo, Hint, FeatureResults[F]);
    });
    double BestGain = 1e-9;
    bool Found = false;
    for (unsigned F = 0; F != NumFeatures; ++F) {
      const FeatureBest &FB = FeatureResults[F];
      if (FB.Found && FB.Gain > BestGain) {
        BestGain = FB.Gain;
        Best = {F, FB.IsLessEqual, FB.Value};
        Found = true;
      }
    }
    return Found;
  }

  /// Installs (\p Pos, \p Neg) as the grow universe: per feature, those
  /// instances in value order.  Two bit-identical strategies, chosen
  /// purely by size (so job count never affects the choice): walk the
  /// global presorted index and keep members -- O(n) per feature, right
  /// when the universe is most of the data -- or gather the members and
  /// sort them directly -- O(u log u), right for small mop-up sets.
  void setUniverse(const IndexList &Pos, const IndexList &Neg) {
    size_t N = Cols.NumInstances;
    UniverseBits.assign((N + 63) / 64, 0);
    UniverseList.clear();
    for (const IndexList *L : {&Pos, &Neg})
      for (int I : *L) {
        UniverseBits[static_cast<size_t>(I) >> 6] |=
            1ull << (static_cast<size_t>(I) & 63);
        UniverseList.push_back(I);
      }
    size_t U = UniverseList.size();
    bool WalkIndex = preferWalk(N, U);
    forEachFeature(WalkIndex ? N : U, [&](unsigned F) {
      std::vector<ColEntry> &Ord = UniverseOrd[F];
      Ord.clear();
      Ord.reserve(U);
      const double *Col = Cols.col(F);
      if (WalkIndex) {
        const int32_t *OrderF = Order.data() + static_cast<size_t>(F) * N;
        for (size_t K = 0; K != N; ++K) {
          int32_t I = OrderF[K];
          if (maskBit(UniverseBits, I))
            Ord.push_back({Col[static_cast<size_t>(I)], I,
                           static_cast<int32_t>(IsPos[static_cast<size_t>(I)])});
        }
      } else {
        for (int32_t I : UniverseList)
          Ord.push_back({Col[static_cast<size_t>(I)], I,
                         static_cast<int32_t>(IsPos[static_cast<size_t>(I)])});
        std::sort(Ord.begin(), Ord.end(), entryLess);
      }
    });
  }

  /// Removes every instance whose bit is set in \p DropMask from the
  /// universe (order of the survivors is preserved).
  void shrinkUniverse(const std::vector<uint64_t> &DropMask) {
    size_t U = UniverseOrd.empty() ? 0 : UniverseOrd[0].size();
    forEachFeature(U, [&](unsigned F) {
      std::vector<ColEntry> &Ord = UniverseOrd[F];
      size_t O = 0;
      for (const ColEntry &E : Ord)
        if (!maskBit(DropMask, E.Idx))
          Ord[O++] = E;
      Ord.resize(O);
    });
    for (size_t W = 0; W != UniverseBits.size(); ++W)
      UniverseBits[W] &= ~DropMask[W];
  }

  /// Restricts the covered set to instances satisfying \p C: clears the
  /// coverage bits of the dropped instances and filters every per-feature
  /// ordered list (filtering preserves their value order).
  void applyCondition(const Condition &C, size_t &CovP, size_t &CovN) {
    CovP = CovN = 0;
    size_t W = 0;
    for (int32_t I : CovList) {
      if (!condMatches(C, I)) {
        CovBits[static_cast<size_t>(I) >> 6] &=
            ~(1ull << (static_cast<size_t>(I) & 63));
        continue;
      }
      CovList[W++] = I;
      if (IsPos[static_cast<size_t>(I)])
        ++CovP;
      else
        ++CovN;
    }
    CovList.resize(W);
    forEachFeature(W, [&](unsigned F) {
      std::vector<ColEntry> &Ord = OrderedCov[F];
      size_t O = 0;
      for (const ColEntry &E : Ord)
        if (maskBit(CovBits, E.Idx))
          Ord[O++] = E;
      Ord.resize(O);
    });
  }

  /// Grows \p R (possibly already containing conditions, for revisions) by
  /// adding best-gain conditions until no negatives remain covered.
  void growRule(Rule &R, const IndexList &GrowPos,
                const IndexList &GrowNeg) {
    // Seed the covered set with the grow instances the rule already
    // matches.
    std::fill(CovBits.begin(), CovBits.end(), 0);
    CovList.clear();
    size_t CovP = 0, CovN = 0;
    for (int I : GrowPos)
      if (ruleMatches(R, I)) {
        CovList.push_back(I);
        CovBits[static_cast<size_t>(I) >> 6] |=
            1ull << (static_cast<size_t>(I) & 63);
        ++CovP;
      }
    for (int I : GrowNeg)
      if (ruleMatches(R, I)) {
        CovList.push_back(I);
        CovBits[static_cast<size_t>(I) >> 6] |=
            1ull << (static_cast<size_t>(I) & 63);
        ++CovN;
      }
    if (CovN == 0 || R.size() >= Opts.MaxConditionsPerRule)
      return;

    // Materialize the covered set per feature in value order, once per
    // grown rule: every subsequent condition sweeps it sort-free.  The
    // covered set is a subset of the grow universe, so this is a filtered
    // walk of the (already shrunk) per-feature universe lists -- never of
    // the whole dataset -- unless the covered set is so much smaller that
    // sorting it directly wins (preferWalk).
    size_t CovSize = CovList.size();
    size_t U = UniverseOrd[0].size();
    bool WalkUniverse = preferWalk(U, CovSize);
    forEachFeature(WalkUniverse ? U : CovSize, [&](unsigned F) {
      std::vector<ColEntry> &Ord = OrderedCov[F];
      Ord.clear();
      Ord.reserve(CovSize);
      if (WalkUniverse) {
        for (const ColEntry &E : UniverseOrd[F])
          if (maskBit(CovBits, E.Idx))
            Ord.push_back(E);
      } else {
        const double *Col = Cols.col(F);
        for (int32_t I : CovList)
          Ord.push_back({Col[static_cast<size_t>(I)], I,
                         static_cast<int32_t>(IsPos[static_cast<size_t>(I)])});
        std::sort(Ord.begin(), Ord.end(), entryLess);
      }
    });

    while (CovN != 0 && R.size() < Opts.MaxConditionsPerRule) {
      Condition C;
      if (!findBestCondition(CovP, CovN, C))
        break;
      R.Conditions.push_back(C);
      applyCondition(C, CovP, CovN);
    }
  }

  /// Prunes \p R against the prune split: keeps the prefix of conditions
  /// maximizing (p - n) / (p + n).  May prune to the empty rule, which the
  /// caller must treat as "stop".  Prefix coverage is tracked
  /// incrementally -- each condition filters the surviving prune
  /// instances -- producing the exact counts of the old per-prefix
  /// recount.
  void pruneRule(Rule &R, const IndexList &PrunePos,
                 const IndexList &PruneNeg) {
    if (R.Conditions.empty())
      return;
    double BestWorth = -2.0;
    size_t BestLen = R.size();
    PrunePosCur.assign(PrunePos.begin(), PrunePos.end());
    PruneNegCur.assign(PruneNeg.begin(), PruneNeg.end());
    // Evaluate every prefix length, shortest to longest; strictly-better
    // keeps the shorter (simpler) rule on ties.
    for (size_t Len = 0; Len <= R.size(); ++Len) {
      if (Len > 0) {
        const Condition &C = R.Conditions[Len - 1];
        auto Filter = [&](std::vector<int32_t> &L) {
          size_t W = 0;
          for (int32_t I : L)
            if (condMatches(C, I))
              L[W++] = I;
          L.resize(W);
        };
        Filter(PrunePosCur);
        Filter(PruneNegCur);
      }
      size_t P = PrunePosCur.size(), N = PruneNegCur.size();
      double Worth = (P + N) == 0
                         ? 0.0
                         : (static_cast<double>(P) - static_cast<double>(N)) /
                               static_cast<double>(P + N);
      if (Worth > BestWorth + 1e-12) {
        BestWorth = Worth;
        BestLen = Len;
      }
    }
    R.Conditions.resize(BestLen);
  }

  /// IREP* main loop: returns an ordered list of rules for the target
  /// class covering \p Pos against \p Neg.  The MDL check after each
  /// accepted rule ORs the new rule's coverage mask into an accumulator
  /// instead of re-evaluating every prior rule -- same memberships, same
  /// description lengths.
  std::vector<Rule> buildRuleList(IndexList Pos, IndexList Neg, Rng &R) {
    std::vector<Rule> Rules;
    if (Pos.empty())
      return Rules;
    size_t Words = (Cols.NumInstances + 63) / 64;
    std::vector<uint64_t> AccumMask(Words, 0), CandMask;
    IndexList AllPos = Pos, AllNeg = Neg;
    setUniverse(Pos, Neg);
    double BestDL = dlFromMask(AccumMask, Rules, Rules.size(), Pos, Neg);

    while (!Pos.empty() && Rules.size() < Opts.MaxRules) {
      IndexList GP, GN, PP, PN;
      splitGrowPrune(Pos, Neg, R, GP, GN, PP, PN);

      Rule NewRule;
      NewRule.Conclusion = Target;
      growRule(NewRule, GP, GN);
      pruneRule(NewRule, PP, PN);
      if (NewRule.Conditions.empty())
        break;

      // Reject rules that are wrong more often than right on prune data.
      size_t P, N;
      countCoverage(NewRule, PP, PN, P, N);
      if (P + N > 0 && N > P)
        break;

      // The rule must make progress on the remaining positives.
      size_t CovP, CovN;
      countCoverage(NewRule, Pos, Neg, CovP, CovN);
      if (CovP == 0)
        break;

      Rules.push_back(NewRule);
      ruleMask(NewRule, RuleMaskScratch);
      CandMask = AccumMask;
      orInto(CandMask, RuleMaskScratch);
      double DL = dlFromMask(CandMask, Rules, Rules.size(), AllPos, AllNeg);
      if (DL < BestDL)
        BestDL = DL;
      if (DL > BestDL + Opts.MdlSlackBits) {
        Rules.pop_back();
        break;
      }
      AccumMask.swap(CandMask);

      auto RemoveCovered = [&](IndexList &L) {
        IndexList Out;
        Out.reserve(L.size());
        for (int I : L)
          if (!maskBit(RuleMaskScratch, I))
            Out.push_back(I);
        L = std::move(Out);
      };
      RemoveCovered(Pos);
      RemoveCovered(Neg);
      shrinkUniverse(RuleMaskScratch);
    }
    return Rules;
  }

  /// One optimization pass over \p Rules (replacement / revision / keep by
  /// minimum description length), followed by mop-up and rule deletion.
  void optimizePass(std::vector<Rule> &Rules, const IndexList &AllPos,
                    const IndexList &AllNeg, Rng &R) {
    // PrevMaskScratch accumulates the union of rules before RI, in their
    // *final* (possibly replaced) form -- exactly what per-instance
    // re-evaluation saw, since rule RI-1 is settled before iteration RI.
    // SuffMask[K] is the union of the *original* rules K..end; at
    // iteration RI only indices > RI are consulted, which the pass has
    // not touched yet, so the precomputation stays valid throughout.
    size_t Words = (Cols.NumInstances + 63) / 64;
    PrevMaskScratch.assign(Words, 0);
    std::vector<std::vector<uint64_t>> SuffMask(Rules.size() + 1);
    SuffMask[Rules.size()].assign(Words, 0);
    for (size_t K = Rules.size(); K-- > 0;) {
      ruleMask(Rules[K], RuleMaskScratch);
      SuffMask[K] = SuffMask[K + 1];
      orInto(SuffMask[K], RuleMaskScratch);
    }
    setUniverse(AllPos, AllNeg);
    for (size_t RI = 0; RI != Rules.size(); ++RI) {
      if (RI > 0) {
        ruleMask(Rules[RI - 1], RuleMaskScratch);
        orInto(PrevMaskScratch, RuleMaskScratch);
        shrinkUniverse(RuleMaskScratch);
      }
      // Instances that reach rule RI (not claimed by an earlier rule).
      IndexList ReachPos, ReachNeg;
      for (int I : AllPos)
        if (!maskBit(PrevMaskScratch, I))
          ReachPos.push_back(I);
      for (int I : AllNeg)
        if (!maskBit(PrevMaskScratch, I))
          ReachNeg.push_back(I);
      if (ReachPos.empty())
        continue;

      IndexList GP, GN, PP, PN;
      splitGrowPrune(ReachPos, ReachNeg, R, GP, GN, PP, PN);

      // Replacement: grown from scratch.
      Rule Replacement;
      Replacement.Conclusion = Target;
      growRule(Replacement, GP, GN);
      pruneRule(Replacement, PP, PN);

      // Revision: grown from the current rule.
      Rule Revision = Rules[RI];
      Revision.NumCorrect = Revision.NumIncorrect = 0;
      growRule(Revision, GP, GN);
      pruneRule(Revision, PP, PN);

      // Keep whichever of {original, replacement, revision} minimizes the
      // description length of the whole rule set.  Every variant differs
      // from the current list only at RI, so each DL is prefix-union |
      // variant's mask | suffix-union -- no other rule is re-evaluated.
      std::vector<Rule> Variant = Rules;
      auto VariantDL = [&](const Rule &At) {
        Variant[RI] = At;
        std::vector<uint64_t> Any = PrevMaskScratch;
        orInto(Any, SuffMask[RI + 1]);
        ruleMask(At, RuleMaskScratch);
        orInto(Any, RuleMaskScratch);
        return dlFromMask(Any, Variant, Variant.size(), AllPos, AllNeg);
      };
      double DLOrig = VariantDL(Rules[RI]);
      double DLRepl = 1e300, DLRev = 1e300;
      if (!Replacement.Conditions.empty())
        DLRepl = VariantDL(Replacement);
      if (!Revision.Conditions.empty())
        DLRev = VariantDL(Revision);
      if (DLRepl < DLOrig && DLRepl <= DLRev)
        Rules[RI] = Replacement;
      else if (DLRev < DLOrig)
        Rules[RI] = Revision;
    }

    // Mop-up: cover positives the optimized rules no longer cover.
    IndexList UncovPos, UncovNeg;
    anyRuleMask(Rules, AnyMaskScratch);
    for (int I : AllPos)
      if (!maskBit(AnyMaskScratch, I))
        UncovPos.push_back(I);
    for (int I : AllNeg)
      if (!maskBit(AnyMaskScratch, I))
        UncovNeg.push_back(I);
    std::vector<Rule> Extra = buildRuleList(UncovPos, UncovNeg, R);
    for (Rule &E : Extra)
      if (Rules.size() < Opts.MaxRules)
        Rules.push_back(std::move(E));

    // Deletion: drop rules whose removal shrinks the description length.
    // Each round computes every rule's coverage mask once; a
    // leave-one-out union is then cheap bit algebra instead of a full
    // re-evaluation per candidate.
    std::vector<std::vector<uint64_t>> PerRule;
    std::vector<uint64_t> Any;
    bool Changed = true;
    while (Changed && !Rules.empty()) {
      Changed = false;
      PerRule.resize(Rules.size());
      Any.assign(Words, 0);
      for (size_t RI = 0; RI != Rules.size(); ++RI) {
        ruleMask(Rules[RI], PerRule[RI]);
        orInto(Any, PerRule[RI]);
      }
      double CurDL = dlFromMask(Any, Rules, Rules.size(), AllPos, AllNeg);
      double BestDL = CurDL;
      size_t BestIdx = Rules.size();
      for (size_t RI = 0; RI != Rules.size(); ++RI) {
        Any.assign(Words, 0);
        for (size_t J = 0; J != Rules.size(); ++J)
          if (J != RI)
            orInto(Any, PerRule[J]);
        double DL = dlFromMask(Any, Rules, RI, AllPos, AllNeg);
        if (DL < BestDL) {
          BestDL = DL;
          BestIdx = RI;
        }
      }
      if (BestIdx != Rules.size()) {
        Rules.erase(Rules.begin() + static_cast<long>(BestIdx));
        Changed = true;
      }
    }
  }
};

RuleSet trainImpl(const Dataset &Data, const RipperOptions &Opts,
                  TaskPool *Pool) {
  size_t NumLS = Data.countLabel(Label::LS);
  size_t NumNS = Data.size() - NumLS;

  // Degenerate cases: empty or single-class data.
  if (Data.empty())
    return RuleSet(Label::NS);
  if (NumLS == 0)
    return RuleSet(Label::NS);
  if (NumNS == 0)
    return RuleSet(Label::LS);

  // RIPPER orders classes by frequency: induce rules for the minority
  // class; the majority is the default.  Ties break toward LS rules with
  // NS default, matching the paper's filters.
  Label Target = NumLS <= NumNS ? Label::LS : Label::NS;
  Label Default = Target == Label::LS ? Label::NS : Label::LS;

  Trainer T(Data, Opts, Target, Pool);
  IndexList Pos, Neg;
  for (int I = 0, E = static_cast<int>(Data.size()); I != E; ++I)
    (T.IsPos[static_cast<size_t>(I)] ? Pos : Neg).push_back(I);

  Rng R(Opts.Seed);
  std::vector<Rule> Rules = T.buildRuleList(Pos, Neg, R);
  for (unsigned Pass = 0; Pass != Opts.OptimizePasses; ++Pass)
    T.optimizePass(Rules, Pos, Neg, R);

  RuleSet RS(Default);
  for (Rule &Rl : Rules) {
    Rl.Conclusion = Target;
    RS.addRule(std::move(Rl));
  }
  size_t DC, DI;
  RS.annotateCoverage(Data, DC, DI);
  return RS;
}

} // namespace

Ripper::Ripper(RipperOptions O) : Opts(O) {}

RuleSet Ripper::train(const Dataset &Data) const {
  return trainImpl(Data, Opts, nullptr);
}

RuleSet Ripper::train(const Dataset &Data, TaskPool &Pool) const {
  return trainImpl(Data, Opts, &Pool);
}
