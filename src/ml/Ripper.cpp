//===- ml/Ripper.cpp - RIPPER rule induction --------------------------------===//

#include "ml/Ripper.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

using namespace schedfilter;

namespace {

/// Index-based view: all algorithms below manipulate vectors of instance
/// indices into one Dataset.
using IndexList = std::vector<int>;

/// log2 of the binomial coefficient C(n, k), via lgamma for stability.
double log2Binomial(size_t N, size_t K) {
  if (K > N)
    return 0.0;
  double L = std::lgamma(static_cast<double>(N) + 1.0) -
             std::lgamma(static_cast<double>(K) + 1.0) -
             std::lgamma(static_cast<double>(N - K) + 1.0);
  return L / std::log(2.0);
}

/// Bits to identify which K of N elements are exceptions (Quinlan-style
/// two-part exception code).
double subsetDL(size_t N, size_t K) {
  if (N == 0)
    return 0.0;
  return std::log2(static_cast<double>(N) + 1.0) + log2Binomial(N, K);
}

/// Deterministic Fisher-Yates shuffle.
void shuffle(IndexList &V, Rng &R) {
  for (size_t I = V.size(); I > 1; --I)
    std::swap(V[I - 1], V[R.below(static_cast<uint32_t>(I))]);
}

/// Counts how many of \p Indices the rule matches, split by class.
void countCoverage(const Dataset &D, const Rule &R, const IndexList &Pos,
                   const IndexList &Neg, size_t &P, size_t &N) {
  P = N = 0;
  for (int I : Pos)
    if (R.matches(D[static_cast<size_t>(I)].X))
      ++P;
  for (int I : Neg)
    if (R.matches(D[static_cast<size_t>(I)].X))
      ++N;
}

/// The whole learning state threaded through the helper routines.
struct Trainer {
  const Dataset &D;
  const RipperOptions &Opts;
  Label Target;
  double CondSpaceBits; // log2(#possible conditions), for the theory DL

  Trainer(const Dataset &Data, const RipperOptions &O, Label Tgt)
      : D(Data), Opts(O), Target(Tgt) {
    // Estimate the size of the condition space: two operators per distinct
    // (feature, value) pair present in the data.
    size_t NumConds = 0;
    for (unsigned F = 0; F != NumFeatures; ++F) {
      std::set<double> Distinct;
      for (const Instance &I : D)
        Distinct.insert(I.X[F]);
      NumConds += 2 * Distinct.size();
    }
    CondSpaceBits = std::log2(std::max<double>(2.0, static_cast<double>(NumConds)));
  }

  bool isPos(int I) const { return D[static_cast<size_t>(I)].Y == Target; }

  /// Theory cost of one rule (Cohen's redundancy-adjusted encoding).
  double ruleDL(const Rule &R) const {
    double K = static_cast<double>(R.size());
    return 0.5 * (std::log2(K + 1.0) + K * CondSpaceBits);
  }

  /// Total description length of \p Rules as a classifier for the
  /// instances \p Pos and \p Neg: theory bits plus exception bits for the
  /// false positives among covered and false negatives among uncovered.
  double totalDL(const std::vector<Rule> &Rules, const IndexList &Pos,
                 const IndexList &Neg) const {
    auto CoveredByAny = [&](int I) {
      for (const Rule &R : Rules)
        if (R.matches(D[static_cast<size_t>(I)].X))
          return true;
      return false;
    };
    size_t Covered = 0, FP = 0, FN = 0;
    for (int I : Pos) {
      if (CoveredByAny(I))
        ++Covered;
      else
        ++FN;
    }
    for (int I : Neg) {
      if (CoveredByAny(I)) {
        ++Covered;
        ++FP;
      }
    }
    size_t Total = Pos.size() + Neg.size();
    double DL = subsetDL(Covered, FP) + subsetDL(Total - Covered, FN);
    for (const Rule &R : Rules)
      DL += ruleDL(R);
    return DL;
  }

  /// Stratified grow/prune split of (Pos, Neg).
  void splitGrowPrune(const IndexList &Pos, const IndexList &Neg, Rng &R,
                      IndexList &GrowPos, IndexList &GrowNeg,
                      IndexList &PrunePos, IndexList &PruneNeg) const {
    IndexList P = Pos, N = Neg;
    shuffle(P, R);
    shuffle(N, R);
    size_t PG = static_cast<size_t>(
        std::ceil(Opts.GrowFraction * static_cast<double>(P.size())));
    size_t NG = static_cast<size_t>(
        std::ceil(Opts.GrowFraction * static_cast<double>(N.size())));
    GrowPos.assign(P.begin(), P.begin() + static_cast<long>(PG));
    PrunePos.assign(P.begin() + static_cast<long>(PG), P.end());
    GrowNeg.assign(N.begin(), N.begin() + static_cast<long>(NG));
    PruneNeg.assign(N.begin() + static_cast<long>(NG), N.end());
  }

  /// Finds the single condition with the highest FOIL information gain
  /// over the currently covered grow instances.  Returns false when no
  /// condition has positive gain (or none excludes anything).
  bool findBestCondition(const IndexList &CovPos, const IndexList &CovNeg,
                         Condition &Best) const {
    size_t P0 = CovPos.size(), N0 = CovNeg.size();
    if (P0 == 0)
      return false;
    double BaseInfo = std::log2(static_cast<double>(P0) /
                                static_cast<double>(P0 + N0));
    double BestGain = 1e-9;
    bool Found = false;

    // (value, isPositive) pairs, sorted per feature.
    std::vector<std::pair<double, bool>> Vals;
    Vals.reserve(P0 + N0);
    for (unsigned F = 0; F != NumFeatures; ++F) {
      Vals.clear();
      for (int I : CovPos)
        Vals.push_back({D[static_cast<size_t>(I)].X[F], true});
      for (int I : CovNeg)
        Vals.push_back({D[static_cast<size_t>(I)].X[F], false});
      std::sort(Vals.begin(), Vals.end(),
                [](const auto &A, const auto &B) { return A.first < B.first; });

      // Sweep distinct values; PrefP/PrefN count instances with value <= v.
      size_t PrefP = 0, PrefN = 0;
      for (size_t I = 0; I != Vals.size();) {
        double V = Vals[I].first;
        while (I != Vals.size() && Vals[I].first == V) {
          if (Vals[I].second)
            ++PrefP;
          else
            ++PrefN;
          ++I;
        }
        auto Consider = [&](bool IsLE, size_t P, size_t N) {
          if (P == 0)
            return;
          if (P + N == P0 + N0)
            return; // excludes nothing; useless condition
          double Gain =
              static_cast<double>(P) *
              (std::log2(static_cast<double>(P) / static_cast<double>(P + N)) -
               BaseInfo);
          if (Gain > BestGain) {
            BestGain = Gain;
            Best = {F, IsLE, V};
            Found = true;
          }
        };
        // X[F] <= V keeps the prefix.
        Consider(true, PrefP, PrefN);
        // X[F] >= V keeps this value group and the suffix.  The group was
        // already added to the prefix, so subtract everything before it.
        size_t GroupStart = I; // one past the group; recompute below
        (void)GroupStart;
        size_t SuffP = P0 - PrefP, SuffN = N0 - PrefN;
        // Count the group itself (values == V).
        size_t GP = 0, GN = 0;
        for (size_t J = I; J-- > 0 && Vals[J].first == V;) {
          if (Vals[J].second)
            ++GP;
          else
            ++GN;
        }
        Consider(false, SuffP + GP, SuffN + GN);
      }
    }
    return Found;
  }

  /// Grows \p R (possibly already containing conditions, for revisions) by
  /// adding best-gain conditions until no negatives remain covered.
  void growRule(Rule &R, const IndexList &GrowPos,
                const IndexList &GrowNeg) const {
    IndexList CovPos, CovNeg;
    for (int I : GrowPos)
      if (R.matches(D[static_cast<size_t>(I)].X))
        CovPos.push_back(I);
    for (int I : GrowNeg)
      if (R.matches(D[static_cast<size_t>(I)].X))
        CovNeg.push_back(I);

    while (!CovNeg.empty() && R.size() < Opts.MaxConditionsPerRule) {
      Condition C;
      if (!findBestCondition(CovPos, CovNeg, C))
        break;
      R.Conditions.push_back(C);
      auto Keep = [&](IndexList &L) {
        IndexList Out;
        Out.reserve(L.size());
        for (int I : L)
          if (C.matches(D[static_cast<size_t>(I)].X))
            Out.push_back(I);
        L = std::move(Out);
      };
      Keep(CovPos);
      Keep(CovNeg);
    }
  }

  /// Prunes \p R against the prune split: keeps the prefix of conditions
  /// maximizing (p - n) / (p + n).  May prune to the empty rule, which the
  /// caller must treat as "stop".
  void pruneRule(Rule &R, const IndexList &PrunePos,
                 const IndexList &PruneNeg) const {
    if (R.Conditions.empty())
      return;
    double BestWorth = -2.0;
    size_t BestLen = R.size();
    Rule Prefix;
    Prefix.Conclusion = R.Conclusion;
    // Evaluate every prefix length, shortest to longest; strictly-better
    // keeps the shorter (simpler) rule on ties.
    for (size_t Len = 0; Len <= R.size(); ++Len) {
      if (Len > 0)
        Prefix.Conditions.push_back(R.Conditions[Len - 1]);
      size_t P, N;
      countCoverage(D, Prefix, PrunePos, PruneNeg, P, N);
      double Worth = (P + N) == 0
                         ? 0.0
                         : (static_cast<double>(P) - static_cast<double>(N)) /
                               static_cast<double>(P + N);
      if (Worth > BestWorth + 1e-12) {
        BestWorth = Worth;
        BestLen = Len;
      }
    }
    R.Conditions.resize(BestLen);
  }

  /// IREP* main loop: returns an ordered list of rules for the target
  /// class covering \p Pos against \p Neg.
  std::vector<Rule> buildRuleList(IndexList Pos, IndexList Neg,
                                  Rng &R) const {
    std::vector<Rule> Rules;
    if (Pos.empty())
      return Rules;
    double BestDL = totalDL(Rules, Pos, Neg);
    IndexList AllPos = Pos, AllNeg = Neg;

    while (!Pos.empty() && Rules.size() < Opts.MaxRules) {
      IndexList GP, GN, PP, PN;
      splitGrowPrune(Pos, Neg, R, GP, GN, PP, PN);

      Rule NewRule;
      NewRule.Conclusion = Target;
      growRule(NewRule, GP, GN);
      pruneRule(NewRule, PP, PN);
      if (NewRule.Conditions.empty())
        break;

      // Reject rules that are wrong more often than right on prune data.
      size_t P, N;
      countCoverage(D, NewRule, PP, PN, P, N);
      if (P + N > 0 && N > P)
        break;

      // The rule must make progress on the remaining positives.
      size_t CovP, CovN;
      countCoverage(D, NewRule, Pos, Neg, CovP, CovN);
      if (CovP == 0)
        break;

      Rules.push_back(NewRule);
      double DL = totalDL(Rules, AllPos, AllNeg);
      if (DL < BestDL)
        BestDL = DL;
      if (DL > BestDL + Opts.MdlSlackBits) {
        Rules.pop_back();
        break;
      }

      auto RemoveCovered = [&](IndexList &L) {
        IndexList Out;
        Out.reserve(L.size());
        for (int I : L)
          if (!NewRule.matches(D[static_cast<size_t>(I)].X))
            Out.push_back(I);
        L = std::move(Out);
      };
      RemoveCovered(Pos);
      RemoveCovered(Neg);
    }
    return Rules;
  }

  /// One optimization pass over \p Rules (replacement / revision / keep by
  /// minimum description length), followed by mop-up and rule deletion.
  void optimizePass(std::vector<Rule> &Rules, const IndexList &AllPos,
                    const IndexList &AllNeg, Rng &R) const {
    for (size_t RI = 0; RI != Rules.size(); ++RI) {
      // Instances that reach rule RI (not claimed by an earlier rule).
      IndexList ReachPos, ReachNeg;
      auto Reaches = [&](int I) {
        for (size_t J = 0; J != RI; ++J)
          if (Rules[J].matches(D[static_cast<size_t>(I)].X))
            return false;
        return true;
      };
      for (int I : AllPos)
        if (Reaches(I))
          ReachPos.push_back(I);
      for (int I : AllNeg)
        if (Reaches(I))
          ReachNeg.push_back(I);
      if (ReachPos.empty())
        continue;

      IndexList GP, GN, PP, PN;
      splitGrowPrune(ReachPos, ReachNeg, R, GP, GN, PP, PN);

      // Replacement: grown from scratch.
      Rule Replacement;
      Replacement.Conclusion = Target;
      growRule(Replacement, GP, GN);
      pruneRule(Replacement, PP, PN);

      // Revision: grown from the current rule.
      Rule Revision = Rules[RI];
      Revision.NumCorrect = Revision.NumIncorrect = 0;
      growRule(Revision, GP, GN);
      pruneRule(Revision, PP, PN);

      // Keep whichever of {original, replacement, revision} minimizes the
      // description length of the whole rule set.
      double DLOrig = totalDL(Rules, AllPos, AllNeg);
      std::vector<Rule> Variant = Rules;
      double DLRepl = 1e300, DLRev = 1e300;
      if (!Replacement.Conditions.empty()) {
        Variant[RI] = Replacement;
        DLRepl = totalDL(Variant, AllPos, AllNeg);
      }
      if (!Revision.Conditions.empty()) {
        Variant[RI] = Revision;
        DLRev = totalDL(Variant, AllPos, AllNeg);
      }
      if (DLRepl < DLOrig && DLRepl <= DLRev)
        Rules[RI] = Replacement;
      else if (DLRev < DLOrig)
        Rules[RI] = Revision;
    }

    // Mop-up: cover positives the optimized rules no longer cover.
    IndexList UncovPos, UncovNeg;
    auto CoveredByAny = [&](int I) {
      for (const Rule &Rl : Rules)
        if (Rl.matches(D[static_cast<size_t>(I)].X))
          return true;
      return false;
    };
    for (int I : AllPos)
      if (!CoveredByAny(I))
        UncovPos.push_back(I);
    for (int I : AllNeg)
      if (!CoveredByAny(I))
        UncovNeg.push_back(I);
    std::vector<Rule> Extra = buildRuleList(UncovPos, UncovNeg, R);
    for (Rule &E : Extra)
      if (Rules.size() < Opts.MaxRules)
        Rules.push_back(std::move(E));

    // Deletion: drop rules whose removal shrinks the description length.
    bool Changed = true;
    while (Changed && !Rules.empty()) {
      Changed = false;
      double CurDL = totalDL(Rules, AllPos, AllNeg);
      double BestDL = CurDL;
      size_t BestIdx = Rules.size();
      for (size_t RI = 0; RI != Rules.size(); ++RI) {
        std::vector<Rule> Without = Rules;
        Without.erase(Without.begin() + static_cast<long>(RI));
        double DL = totalDL(Without, AllPos, AllNeg);
        if (DL < BestDL) {
          BestDL = DL;
          BestIdx = RI;
        }
      }
      if (BestIdx != Rules.size()) {
        Rules.erase(Rules.begin() + static_cast<long>(BestIdx));
        Changed = true;
      }
    }
  }
};

} // namespace

Ripper::Ripper(RipperOptions O) : Opts(O) {}

RuleSet Ripper::train(const Dataset &Data) const {
  size_t NumLS = Data.countLabel(Label::LS);
  size_t NumNS = Data.size() - NumLS;

  // Degenerate cases: empty or single-class data.
  if (Data.empty())
    return RuleSet(Label::NS);
  if (NumLS == 0)
    return RuleSet(Label::NS);
  if (NumNS == 0)
    return RuleSet(Label::LS);

  // RIPPER orders classes by frequency: induce rules for the minority
  // class; the majority is the default.  Ties break toward LS rules with
  // NS default, matching the paper's filters.
  Label Target = NumLS <= NumNS ? Label::LS : Label::NS;
  Label Default = Target == Label::LS ? Label::NS : Label::LS;

  Trainer T(Data, Opts, Target);
  IndexList Pos, Neg;
  for (int I = 0, E = static_cast<int>(Data.size()); I != E; ++I)
    (T.isPos(I) ? Pos : Neg).push_back(I);

  Rng R(Opts.Seed);
  std::vector<Rule> Rules = T.buildRuleList(Pos, Neg, R);
  for (unsigned Pass = 0; Pass != Opts.OptimizePasses; ++Pass)
    T.optimizePass(Rules, Pos, Neg, R);

  RuleSet RS(Default);
  for (Rule &Rl : Rules) {
    Rl.Conclusion = Target;
    RS.addRule(std::move(Rl));
  }
  size_t DC, DI;
  RS.annotateCoverage(Data, DC, DI);
  return RS;
}
