//===- ml/Labeler.cpp - Threshold labeling of raw block records ------------===//

#include "ml/Labeler.h"

using namespace schedfilter;

double schedfilter::schedulingBenefitPercent(const BlockRecord &R) {
  if (R.CostNoSched == 0)
    return 0.0;
  return 100.0 *
         (static_cast<double>(R.CostNoSched) -
          static_cast<double>(R.CostSched)) /
         static_cast<double>(R.CostNoSched);
}

std::optional<Label>
schedfilter::labelWithThreshold(const BlockRecord &R, double ThresholdPct) {
  double Benefit = schedulingBenefitPercent(R);
  if (Benefit > ThresholdPct)
    return Label::LS;
  if (Benefit <= 0.0)
    return Label::NS;
  return std::nullopt; // benefit in (0, t]: dropped as noise
}

Dataset schedfilter::buildDataset(const std::vector<BlockRecord> &Records,
                                  double ThresholdPct,
                                  const std::string &Name) {
  Dataset D(Name);
  for (const BlockRecord &R : Records)
    if (std::optional<Label> L = labelWithThreshold(R, ThresholdPct))
      D.add({R.X, *L});
  return D;
}

Dataset schedfilter::buildDataset(const std::vector<BlockRecord> &Records,
                                  double ThresholdPct, const std::string &Name,
                                  const LabelTransform &Transform) {
  if (!Transform)
    return buildDataset(Records, ThresholdPct, Name);
  Dataset D(Name);
  for (size_t I = 0; I != Records.size(); ++I) {
    const BlockRecord &R = Records[I];
    if (std::optional<Label> L =
            Transform(labelWithThreshold(R, ThresholdPct), R, I))
      D.add({R.X, *L});
  }
  return D;
}
