//===- ml/Rule.cpp - If-then rules over block features ---------------------===//

#include "ml/Rule.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace schedfilter;

std::string Condition::toString() const {
  std::string S = getFeatureName(Feature);
  S += IsLessEqual ? " <= " : " >= ";
  // bbLen is integral; fractions print with 4 decimals like the paper.
  if (Feature == FeatBBLen)
    S += formatDouble(Threshold, 0);
  else
    S += formatDouble(Threshold, 4);
  return S;
}

std::string Rule::toString() const {
  std::string S = "(" + padLeft(std::to_string(NumCorrect), 5) + "/" +
                  padLeft(std::to_string(NumIncorrect), 4) + ") ";
  S += Conclusion == Label::LS ? "list :- " : "orig :- ";
  for (size_t I = 0; I != Conditions.size(); ++I) {
    if (I)
      S += ", ";
    S += Conditions[I].toString();
  }
  if (Conditions.empty())
    S += "true";
  return S;
}

uint64_t RuleSet::predictionWork(const FeatureVector &X) const {
  uint64_t Work = 0;
  for (const Rule &R : Rules) {
    bool Matched = true;
    for (const Condition &C : R.Conditions) {
      ++Work;
      if (!C.matches(X)) {
        Matched = false;
        break;
      }
    }
    if (Matched)
      return Work;
  }
  return Work + 1;
}

double RuleSet::minMatchableBBLen() const {
  double Gate = 1e308;
  for (const Rule &R : Rules) {
    double RuleBound = 0.0;
    for (const Condition &C : R.Conditions)
      if (C.Feature == FeatBBLen && !C.IsLessEqual)
        RuleBound = std::max(RuleBound, C.Threshold);
    Gate = std::min(Gate, RuleBound);
  }
  return Rules.empty() ? 1e308 : Gate;
}

size_t RuleSet::totalConditions() const {
  size_t N = 0;
  for (const Rule &R : Rules)
    N += R.size();
  return N;
}

void RuleSet::annotateCoverage(const Dataset &Data, size_t &DefaultCorrect,
                               size_t &DefaultIncorrect) {
  for (Rule &R : Rules) {
    R.NumCorrect = 0;
    R.NumIncorrect = 0;
  }
  DefaultCorrect = 0;
  DefaultIncorrect = 0;
  for (const Instance &I : Data) {
    bool Claimed = false;
    for (Rule &R : Rules) {
      if (!R.matches(I.X))
        continue;
      if (R.Conclusion == I.Y)
        ++R.NumCorrect;
      else
        ++R.NumIncorrect;
      Claimed = true;
      break;
    }
    if (!Claimed) {
      if (DefaultClass == I.Y)
        ++DefaultCorrect;
      else
        ++DefaultIncorrect;
    }
  }
}

std::string RuleSet::toString() const {
  std::string S;
  for (const Rule &R : Rules)
    S += R.toString() + "\n";
  S += "(default) " + std::string(DefaultClass == Label::LS ? "list" : "orig") +
       "\n";
  return S;
}
