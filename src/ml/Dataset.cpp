//===- ml/Dataset.cpp - Training/test instances ----------------------------===//

#include "ml/Dataset.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

using namespace schedfilter;

const char *schedfilter::getLabelName(Label L) {
  return L == Label::LS ? "LS" : "NS";
}

void Dataset::append(const Dataset &Other) {
  Instances.insert(Instances.end(), Other.Instances.begin(),
                   Other.Instances.end());
}

size_t Dataset::countLabel(Label L) const {
  size_t N = 0;
  for (const Instance &I : Instances)
    if (I.Y == L)
      ++N;
  return N;
}

ColumnView Dataset::columns() const {
  ColumnView CV;
  CV.NumInstances = Instances.size();
  CV.Values.resize(static_cast<size_t>(NumFeatures) * CV.NumInstances);
  CV.Labels.resize(CV.NumInstances);
  for (size_t I = 0; I != CV.NumInstances; ++I) {
    CV.Labels[I] = Instances[I].Y;
    for (unsigned F = 0; F != NumFeatures; ++F)
      CV.Values[static_cast<size_t>(F) * CV.NumInstances + I] =
          Instances[I].X[F];
  }
  return CV;
}

void Dataset::writeCsv(std::ostream &OS) const {
  for (unsigned F = 0; F != NumFeatures; ++F)
    OS << getFeatureName(F) << ',';
  OS << "label\n";
  for (const Instance &I : Instances) {
    for (unsigned F = 0; F != NumFeatures; ++F)
      OS << I.X[F] << ',';
    OS << getLabelName(I.Y) << '\n';
  }
}

bool Dataset::readCsv(std::istream &IS) {
  std::vector<Instance> Parsed;
  std::string Line;
  if (!std::getline(IS, Line))
    return false; // missing header
  while (std::getline(IS, Line)) {
    if (Line.empty())
      continue;
    std::istringstream SS(Line);
    Instance Inst;
    std::string Cell;
    for (unsigned F = 0; F != NumFeatures; ++F) {
      if (!std::getline(SS, Cell, ','))
        return false;
      char *End = nullptr;
      Inst.X[F] = std::strtod(Cell.c_str(), &End);
      if (End == Cell.c_str())
        return false;
    }
    if (!std::getline(SS, Cell))
      return false;
    if (Cell == "LS")
      Inst.Y = Label::LS;
    else if (Cell == "NS")
      Inst.Y = Label::NS;
    else
      return false;
    Parsed.push_back(Inst);
  }
  Instances = std::move(Parsed);
  return true;
}
