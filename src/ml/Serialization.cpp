//===- ml/Serialization.cpp - Persisting induced filters --------------------===//

#include "ml/Serialization.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>

using namespace schedfilter;

unsigned schedfilter::findFeatureByName(const std::string &Name) {
  for (unsigned F = 0; F != NumFeatures; ++F)
    if (Name == getFeatureName(F))
      return F;
  return NumFeatures;
}

void schedfilter::writeRuleSet(const RuleSet &RS, std::ostream &OS) {
  OS << "schedfilter-rules v1\n";
  OS << "default " << getLabelName(RS.getDefaultClass()) << '\n';
  for (const Rule &R : RS.rules()) {
    OS << "rule " << getLabelName(R.Conclusion) << " :- ";
    for (size_t I = 0; I != R.Conditions.size(); ++I) {
      const Condition &C = R.Conditions[I];
      if (I)
        OS << ", ";
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.17g", C.Threshold);
      OS << getFeatureName(C.Feature) << (C.IsLessEqual ? " <= " : " >= ")
         << Buf;
    }
    if (R.Conditions.empty())
      OS << "true";
    OS << '\n';
  }
}

namespace {

/// Strips leading/trailing spaces.
std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

std::optional<Label> parseLabel(const std::string &S) {
  if (S == "LS")
    return Label::LS;
  if (S == "NS")
    return Label::NS;
  return std::nullopt;
}

/// Parses one "<feature> <= <value>" condition; on failure \p Why says
/// what was wrong with \p Text.
std::optional<Condition> parseCondition(const std::string &Text,
                                        std::string &Why) {
  size_t OpPos = Text.find("<=");
  bool IsLE = true;
  if (OpPos == std::string::npos) {
    OpPos = Text.find(">=");
    IsLE = false;
  }
  if (OpPos == std::string::npos) {
    Why = "condition '" + Text + "' has no '<=' or '>=' operator";
    return std::nullopt;
  }
  std::string FeatName = trim(Text.substr(0, OpPos));
  std::string ValText = trim(Text.substr(OpPos + 2));
  unsigned Feature = findFeatureByName(FeatName);
  if (Feature == NumFeatures) {
    Why = "unknown feature '" + FeatName + "'";
    return std::nullopt;
  }
  if (ValText.empty()) {
    Why = "condition on '" + FeatName + "' is missing its threshold";
    return std::nullopt;
  }
  // Strict full-token parse, mirroring CommandLine::getDouble: strtod
  // accepts "nan", "inf"/"-inf", hex floats and partial prefixes, all of
  // which must be rejected -- a NaN threshold creates a never-matching
  // condition and poisons RuleSet::minMatchableBBLen.
  bool Hex = ValText.find('x') != std::string::npos ||
             ValText.find('X') != std::string::npos;
  char *End = nullptr;
  double Threshold = std::strtod(ValText.c_str(), &End);
  if (Hex || End != ValText.c_str() + ValText.size()) {
    Why = "threshold '" + ValText + "' is not a number";
    return std::nullopt;
  }
  if (!std::isfinite(Threshold)) {
    Why = "threshold '" + ValText + "' is not finite (NaN and infinite "
          "thresholds create never-matching conditions)";
    return std::nullopt;
  }
  return Condition{Feature, IsLE, Threshold};
}

} // namespace

ParseResult<RuleSetFile> schedfilter::readRuleSetFile(std::istream &IS) {
  std::string Line;
  size_t LineNo = 0;

  if (!std::getline(IS, Line) || trim(Line) != "schedfilter-rules v1")
    return ParseError{1, "expected the header 'schedfilter-rules v1'"};
  ++LineNo;

  if (!std::getline(IS, Line))
    return ParseError{2, "missing 'default LS|NS' line"};
  ++LineNo;
  std::string DefaultLine = trim(Line);
  std::optional<Label> Default;
  if (DefaultLine.rfind("default ", 0) == 0)
    Default = parseLabel(trim(DefaultLine.substr(8)));
  if (!Default)
    return ParseError{LineNo,
                      "expected 'default LS' or 'default NS', got '" +
                          DefaultLine + "'"};

  RuleSetFile File;
  File.Rules.setDefaultClass(*Default);
  while (std::getline(IS, Line)) {
    ++LineNo;
    std::string T = trim(Line);
    if (T.empty() || T[0] == '#')
      continue;
    if (T.rfind("rule ", 0) != 0)
      return ParseError{LineNo, "expected a 'rule LS|NS :- ...' line, got '" +
                                    T + "'"};
    size_t Sep = T.find(" :- ");
    if (Sep == std::string::npos)
      return ParseError{LineNo, "rule line has no ' :- ' separator"};
    std::optional<Label> Concl = parseLabel(trim(T.substr(5, Sep - 5)));
    if (!Concl)
      return ParseError{LineNo, "rule conclusion '" +
                                    trim(T.substr(5, Sep - 5)) +
                                    "' is not LS or NS"};
    Rule R;
    R.Conclusion = *Concl;
    std::string Body = trim(T.substr(Sep + 4));
    if (Body != "true") {
      std::stringstream SS(Body);
      std::string Part;
      std::string Why;
      while (std::getline(SS, Part, ',')) {
        std::optional<Condition> C = parseCondition(trim(Part), Why);
        if (!C)
          return ParseError{LineNo, Why};
        R.Conditions.push_back(*C);
      }
      if (R.Conditions.empty())
        return ParseError{LineNo, "rule body is empty (use 'true' for a "
                                  "match-all rule)"};
    }
    File.Rules.addRule(std::move(R));
    File.RuleLines.push_back(LineNo);
  }
  return File;
}

ParseResult<RuleSet> schedfilter::readRuleSet(std::istream &IS) {
  ParseResult<RuleSetFile> File = readRuleSetFile(IS);
  if (!File)
    return File.error();
  return std::move(File->Rules);
}
