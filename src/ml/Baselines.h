//===- ml/Baselines.h - Trivial comparison policies --------------*- C++ -*-===//
///
/// \file
/// Baseline "learners" the ablation benchmarks compare RIPPER against:
/// the paper's two fixed strategies (always schedule / never schedule) and
/// two cheap learned baselines — a block-size decision stump and Holte's
/// 1R (the best single-feature threshold split).  All produce RuleSets so
/// the rest of the pipeline treats them uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ML_BASELINES_H
#define SCHEDFILTER_ML_BASELINES_H

#include "ml/Rule.h"

namespace schedfilter {

/// A filter that schedules every block (the paper's LS strategy).
RuleSet makeAlwaysSchedule();

/// A filter that schedules no block (the paper's NS strategy).
RuleSet makeNeverSchedule();

/// Learns the best single threshold on bbLen: "schedule iff bbLen >= k",
/// choosing k to minimize training error.  Returns NeverSchedule when no
/// split beats the majority class.
RuleSet learnSizeStump(const Dataset &Data);

/// Holte's 1R restricted to one threshold: picks the (feature, direction,
/// threshold) triple minimizing training error.  Generalizes the stump to
/// all 13 features.
RuleSet learnOneR(const Dataset &Data);

} // namespace schedfilter

#endif // SCHEDFILTER_ML_BASELINES_H
