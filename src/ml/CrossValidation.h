//===- ml/CrossValidation.h - Leave-one-out over benchmarks -----*- C++ -*-===//
///
/// \file
/// The paper's evaluation methodology (§3): leave-one-out cross-validation
/// *by benchmark program* — to evaluate on benchmark i, train on the
/// instances of the other n-1 benchmarks, never on benchmark i's own.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ML_CROSSVALIDATION_H
#define SCHEDFILTER_ML_CROSSVALIDATION_H

#include "ml/Rule.h"

#include <functional>
#include <vector>

namespace schedfilter {

class TaskPool;

/// A learner: trains a RuleSet from a dataset.
using LearnerFn = std::function<RuleSet(const Dataset &)>;

/// One leave-one-out fold result.
struct LoocvFold {
  /// Name of the held-out benchmark (== its dataset's name).
  std::string HeldOut;
  /// Filter trained on the other benchmarks.
  RuleSet Filter;
};

/// Runs leave-one-out cross-validation: for each dataset i in
/// \p PerBenchmark, trains \p Learner on the concatenation of all others
/// and pairs the result with dataset i's name.  Order follows the input.
std::vector<LoocvFold> leaveOneOut(const std::vector<Dataset> &PerBenchmark,
                                   const LearnerFn &Learner);

/// Parallel variant: trains the folds on \p Pool's workers.  Each fold is
/// a pure function of its training set (learners seed their own Rng), so
/// the result is bit-for-bit identical to the serial overload at any job
/// count; fold order always follows the input.  \p Learner must be safe to
/// invoke concurrently from multiple threads.  A learner that itself fans
/// out on the same pool (e.g. ripperLearner(Pool)) is fine: nested
/// parallelFor calls run inline on the worker that owns the fold.
std::vector<LoocvFold> leaveOneOut(const std::vector<Dataset> &PerBenchmark,
                                   const LearnerFn &Learner, TaskPool &Pool);

/// Self-training upper bound discussed in the paper's footnote: train and
/// name one fold per benchmark, trained on that benchmark itself.
std::vector<LoocvFold> selfTrain(const std::vector<Dataset> &PerBenchmark,
                                 const LearnerFn &Learner);

} // namespace schedfilter

#endif // SCHEDFILTER_ML_CROSSVALIDATION_H
