//===- ml/OnlineTrainer.cpp - Serve-time corpus + retrain policy ------------===//

#include "ml/OnlineTrainer.h"

#include "support/TaskPool.h"

using namespace schedfilter;

FilterArtifactRef OnlineTrainer::maybeRetrain(uint64_t Tick,
                                              uint32_t CurrentVersion) {
  if (!Policy.shouldRetrain(Tick, LastTriggerTick, Corpus.newSinceTrain()))
    return nullptr;
  LastTriggerTick = Tick;

  // Retrain on the *whole* corpus (seed + everything served so far), not
  // just the new tail: RIPPER is a batch learner, and the full-corpus
  // retrain keeps each version a pure function of the append sequence up
  // to its trigger -- no hidden incremental state to replay.
  Dataset Labeled = Corpus.label(ThresholdPct, "online");
  RuleSet RS = Ripper().train(Labeled, Pool);
  Corpus.markTrained();
  return makeFilterArtifact(std::move(RS), CurrentVersion + 1, CurrentVersion,
                            Tick, Corpus.size());
}
