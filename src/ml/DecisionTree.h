//===- ml/DecisionTree.h - C4.5-style tree induction -------------*- C++ -*-===//
///
/// \file
/// A top-down decision-tree learner over the numeric block features, in
/// the C4.5 family: binary numeric splits chosen by information gain,
/// with minimum-leaf-size and depth regularization plus bottom-up
/// pessimistic error pruning.
///
/// The paper's closest related work induced heuristics with decision
/// trees (Calder et al. for branch prediction; Monsifrot & Bodin for loop
/// unrolling), and the paper argues RIPPER's rule sets are preferable
/// because they are more compact and readable.  This learner exists to
/// put that claim under test: bench_ablation_learners compares the two on
/// accuracy, model size, and the end-to-end effort/benefit frontier.
///
/// A trained tree converts to an ordered RuleSet (one rule per LS leaf,
/// conditions collected along the path), so it plugs into ScheduleFilter
/// and the experiment harness unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ML_DECISIONTREE_H
#define SCHEDFILTER_ML_DECISIONTREE_H

#include "ml/Rule.h"

#include <memory>

namespace schedfilter {

/// Tuning knobs for tree induction.
struct DecisionTreeOptions {
  /// Nodes with fewer instances become leaves.
  size_t MinLeafSize = 8;
  /// Hard depth cap (a tree of depth d yields rules with <= d conditions).
  unsigned MaxDepth = 12;
  /// Minimum information gain (bits) required to split.
  double MinGain = 1e-4;
  /// Pessimistic-pruning confidence z-score (C4.5 uses ~0.69 for CF=25%).
  double PruneZ = 0.69;
};

/// A trained binary decision tree over FeatureVectors.
class DecisionTree {
public:
  /// Learns a tree for \p Data.  Empty data yields a leaf predicting NS.
  static DecisionTree train(const Dataset &Data,
                            DecisionTreeOptions Opts = DecisionTreeOptions());

  Label predict(const FeatureVector &X) const;

  /// Number of decision (internal) nodes.
  size_t numSplits() const;
  /// Number of leaves.
  size_t numLeaves() const;
  /// Maximum root-to-leaf depth (0 for a single leaf).
  unsigned depth() const;

  /// Flattens the tree into an ordered rule set: one rule per leaf that
  /// predicts LS (path conditions conjoined), default NS -- the classic
  /// "rules from trees" construction.  Coverage counts are annotated
  /// against \p Data.
  RuleSet toRuleSet(const Dataset &Data) const;

  /// Multi-line indented rendering for inspection.
  std::string toString() const;

  DecisionTree(DecisionTree &&) noexcept;
  DecisionTree &operator=(DecisionTree &&) noexcept;
  ~DecisionTree();

  /// Tree node; public only so the implementation's free helpers can see
  /// it -- not part of the stable API.
  struct Node;

private:
  DecisionTree();
  std::unique_ptr<Node> Root;
};

/// Learner adapter matching ml/CrossValidation's LearnerFn shape.
RuleSet learnDecisionTreeRules(const Dataset &Data);

} // namespace schedfilter

#endif // SCHEDFILTER_ML_DECISIONTREE_H
