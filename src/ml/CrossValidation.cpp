//===- ml/CrossValidation.cpp - Leave-one-out over benchmarks ---------------===//

#include "ml/CrossValidation.h"

using namespace schedfilter;

std::vector<LoocvFold>
schedfilter::leaveOneOut(const std::vector<Dataset> &PerBenchmark,
                         const LearnerFn &Learner) {
  std::vector<LoocvFold> Folds;
  Folds.reserve(PerBenchmark.size());
  for (size_t Held = 0; Held != PerBenchmark.size(); ++Held) {
    Dataset Train("train-without-" + PerBenchmark[Held].getName());
    for (size_t J = 0; J != PerBenchmark.size(); ++J)
      if (J != Held)
        Train.append(PerBenchmark[J]);
    Folds.push_back({PerBenchmark[Held].getName(), Learner(Train)});
  }
  return Folds;
}

std::vector<LoocvFold>
schedfilter::selfTrain(const std::vector<Dataset> &PerBenchmark,
                       const LearnerFn &Learner) {
  std::vector<LoocvFold> Folds;
  Folds.reserve(PerBenchmark.size());
  for (const Dataset &D : PerBenchmark)
    Folds.push_back({D.getName(), Learner(D)});
  return Folds;
}
