//===- ml/CrossValidation.cpp - Leave-one-out over benchmarks ---------------===//

#include "ml/CrossValidation.h"

#include "support/TaskPool.h"

using namespace schedfilter;

namespace {

/// Trains fold \p Held: the learner sees every benchmark except the
/// held-out one.  Pure function of its inputs, so folds may run in any
/// order or concurrently.
LoocvFold trainFold(const std::vector<Dataset> &PerBenchmark, size_t Held,
                    const LearnerFn &Learner) {
  Dataset Train("train-without-" + PerBenchmark[Held].getName());
  for (size_t J = 0; J != PerBenchmark.size(); ++J)
    if (J != Held)
      Train.append(PerBenchmark[J]);
  return {PerBenchmark[Held].getName(), Learner(Train)};
}

} // namespace

std::vector<LoocvFold>
schedfilter::leaveOneOut(const std::vector<Dataset> &PerBenchmark,
                         const LearnerFn &Learner) {
  std::vector<LoocvFold> Folds;
  Folds.reserve(PerBenchmark.size());
  for (size_t Held = 0; Held != PerBenchmark.size(); ++Held)
    Folds.push_back(trainFold(PerBenchmark, Held, Learner));
  return Folds;
}

std::vector<LoocvFold>
schedfilter::leaveOneOut(const std::vector<Dataset> &PerBenchmark,
                         const LearnerFn &Learner, TaskPool &Pool) {
  std::vector<LoocvFold> Folds(PerBenchmark.size());
  Pool.parallelFor(PerBenchmark.size(), [&](size_t Held) {
    Folds[Held] = trainFold(PerBenchmark, Held, Learner);
  });
  return Folds;
}

std::vector<LoocvFold>
schedfilter::selfTrain(const std::vector<Dataset> &PerBenchmark,
                       const LearnerFn &Learner) {
  std::vector<LoocvFold> Folds;
  Folds.reserve(PerBenchmark.size());
  for (const Dataset &D : PerBenchmark)
    Folds.push_back({D.getName(), Learner(D)});
  return Folds;
}
