//===- ml/DecisionTree.cpp - C4.5-style tree induction ----------------------===//

#include "ml/DecisionTree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace schedfilter;

/// Tree node: either an internal binary split (X[Feature] <= Threshold
/// goes left) or a leaf with a class and training counts.
struct DecisionTree::Node {
  bool IsLeaf = true;
  Label LeafClass = Label::NS;
  size_t LeafTotal = 0;
  size_t LeafErrors = 0;

  unsigned Feature = 0;
  double Threshold = 0.0;
  std::unique_ptr<Node> Left;  // X[Feature] <= Threshold
  std::unique_ptr<Node> Right; // X[Feature] >  Threshold
};

namespace {

using Node = DecisionTree::Node;

double entropy(size_t Pos, size_t Neg) {
  size_t N = Pos + Neg;
  if (N == 0 || Pos == 0 || Neg == 0)
    return 0.0;
  double P = static_cast<double>(Pos) / static_cast<double>(N);
  return -(P * std::log2(P) + (1.0 - P) * std::log2(1.0 - P));
}

/// Upper confidence bound on the true error rate of a leaf that made
/// E errors over N instances (normal approximation; C4.5's pessimistic
/// estimate).
double pessimisticErrors(size_t N, size_t E, double Z) {
  if (N == 0)
    return 0.0;
  double F = static_cast<double>(E) / static_cast<double>(N);
  double Nn = static_cast<double>(N);
  double Bound = F + Z * std::sqrt(F * (1.0 - F) / Nn + 0.25 / (Nn * Nn)) +
                 Z * Z / (2.0 * Nn);
  return std::min(1.0, Bound) * Nn;
}

struct Builder {
  const Dataset &D;
  const DecisionTreeOptions &Opts;

  std::unique_ptr<Node> makeLeaf(const std::vector<int> &Idx) const {
    auto L = std::make_unique<Node>();
    size_t Pos = 0;
    for (int I : Idx)
      Pos += D[static_cast<size_t>(I)].Y == Label::LS;
    size_t Neg = Idx.size() - Pos;
    L->IsLeaf = true;
    L->LeafClass = Pos > Neg ? Label::LS : Label::NS;
    L->LeafTotal = Idx.size();
    L->LeafErrors = std::min(Pos, Neg);
    return L;
  }

  /// Best binary split of \p Idx by information gain; returns gain (or 0
  /// when no useful split exists) and fills Feature/Threshold.
  double bestSplit(const std::vector<int> &Idx, unsigned &Feature,
                   double &Threshold) const {
    size_t Pos = 0;
    for (int I : Idx)
      Pos += D[static_cast<size_t>(I)].Y == Label::LS;
    size_t Neg = Idx.size() - Pos;
    double Base = entropy(Pos, Neg);
    if (Base == 0.0)
      return 0.0;

    double BestGain = 0.0;
    std::vector<std::pair<double, bool>> Vals;
    Vals.reserve(Idx.size());
    for (unsigned F = 0; F != NumFeatures; ++F) {
      Vals.clear();
      for (int I : Idx)
        Vals.push_back({D[static_cast<size_t>(I)].X[F],
                        D[static_cast<size_t>(I)].Y == Label::LS});
      std::sort(Vals.begin(), Vals.end(),
                [](const auto &A, const auto &B) { return A.first < B.first; });
      size_t LPos = 0, LNeg = 0;
      for (size_t I = 0; I != Vals.size();) {
        double V = Vals[I].first;
        while (I != Vals.size() && Vals[I].first == V) {
          if (Vals[I].second)
            ++LPos;
          else
            ++LNeg;
          ++I;
        }
        if (I == Vals.size())
          break; // splitting at the max keeps everything left
        size_t LeftN = LPos + LNeg;
        size_t RightN = Vals.size() - LeftN;
        double Gain =
            Base -
            (static_cast<double>(LeftN) * entropy(LPos, LNeg) +
             static_cast<double>(RightN) * entropy(Pos - LPos, Neg - LNeg)) /
                static_cast<double>(Vals.size());
        if (Gain > BestGain) {
          BestGain = Gain;
          Feature = F;
          Threshold = V;
        }
      }
    }
    return BestGain;
  }

  std::unique_ptr<Node> build(const std::vector<int> &Idx,
                              unsigned Depth) const {
    if (Idx.size() < 2 * Opts.MinLeafSize || Depth >= Opts.MaxDepth)
      return makeLeaf(Idx);

    unsigned Feature = 0;
    double Threshold = 0.0;
    double Gain = bestSplit(Idx, Feature, Threshold);
    if (Gain < Opts.MinGain)
      return makeLeaf(Idx);

    std::vector<int> LeftIdx, RightIdx;
    for (int I : Idx)
      (D[static_cast<size_t>(I)].X[Feature] <= Threshold ? LeftIdx : RightIdx)
          .push_back(I);
    if (LeftIdx.size() < Opts.MinLeafSize ||
        RightIdx.size() < Opts.MinLeafSize)
      return makeLeaf(Idx);

    auto N = std::make_unique<Node>();
    N->IsLeaf = false;
    N->Feature = Feature;
    N->Threshold = Threshold;
    N->Left = build(LeftIdx, Depth + 1);
    N->Right = build(RightIdx, Depth + 1);
    // Keep the leaf statistics for pruning decisions at this node.
    std::unique_ptr<Node> AsLeaf = makeLeaf(Idx);
    N->LeafClass = AsLeaf->LeafClass;
    N->LeafTotal = AsLeaf->LeafTotal;
    N->LeafErrors = AsLeaf->LeafErrors;
    return N;
  }

  /// C4.5-style subtree replacement: if the pessimistic error of the node
  /// as a leaf is no worse than the summed pessimistic error of its
  /// children, collapse it.
  void prune(Node *N) const {
    if (N->IsLeaf)
      return;
    prune(N->Left.get());
    prune(N->Right.get());
    auto SubtreeErr = [&](const Node *M, auto &&Self) -> double {
      if (M->IsLeaf)
        return pessimisticErrors(M->LeafTotal, M->LeafErrors, Opts.PruneZ);
      return Self(M->Left.get(), Self) + Self(M->Right.get(), Self);
    };
    double Children = SubtreeErr(N, SubtreeErr);
    double AsLeaf =
        pessimisticErrors(N->LeafTotal, N->LeafErrors, Opts.PruneZ);
    if (AsLeaf <= Children + 0.1) {
      N->IsLeaf = true;
      N->Left.reset();
      N->Right.reset();
    }
  }
};

size_t countSplits(const Node *N) {
  if (N->IsLeaf)
    return 0;
  return 1 + countSplits(N->Left.get()) + countSplits(N->Right.get());
}

size_t countLeaves(const Node *N) {
  if (N->IsLeaf)
    return 1;
  return countLeaves(N->Left.get()) + countLeaves(N->Right.get());
}

unsigned depthOf(const Node *N) {
  if (N->IsLeaf)
    return 0;
  return 1 + std::max(depthOf(N->Left.get()), depthOf(N->Right.get()));
}

void collectRules(const Node *N, std::vector<Condition> &Path,
                  std::vector<Rule> &Out) {
  if (N->IsLeaf) {
    if (N->LeafClass == Label::LS) {
      Rule R;
      R.Conclusion = Label::LS;
      R.Conditions = Path;
      Out.push_back(std::move(R));
    }
    return;
  }
  Path.push_back({N->Feature, /*IsLessEqual=*/true, N->Threshold});
  collectRules(N->Left.get(), Path, Out);
  Path.back() = {N->Feature, /*IsLessEqual=*/false,
                 std::nextafter(N->Threshold, 1e308)};
  collectRules(N->Right.get(), Path, Out);
  Path.pop_back();
}

void render(const Node *N, unsigned Indent, std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  if (N->IsLeaf) {
    Out += Pad + "-> " + (N->LeafClass == Label::LS ? "list" : "orig") + " (" +
           std::to_string(N->LeafTotal - N->LeafErrors) + "/" +
           std::to_string(N->LeafErrors) + ")\n";
    return;
  }
  Condition C{N->Feature, true, N->Threshold};
  Out += Pad + "if " + C.toString() + ":\n";
  render(N->Left.get(), Indent + 1, Out);
  Out += Pad + "else:\n";
  render(N->Right.get(), Indent + 1, Out);
}

} // namespace

DecisionTree::DecisionTree() = default;
DecisionTree::DecisionTree(DecisionTree &&) noexcept = default;
DecisionTree &DecisionTree::operator=(DecisionTree &&) noexcept = default;
DecisionTree::~DecisionTree() = default;

DecisionTree DecisionTree::train(const Dataset &Data,
                                 DecisionTreeOptions Opts) {
  DecisionTree T;
  Builder B{Data, Opts};
  std::vector<int> All(Data.size());
  for (size_t I = 0; I != Data.size(); ++I)
    All[I] = static_cast<int>(I);
  if (All.empty()) {
    T.Root = std::make_unique<Node>();
    return T;
  }
  T.Root = B.build(All, 0);
  B.prune(T.Root.get());
  return T;
}

Label DecisionTree::predict(const FeatureVector &X) const {
  const Node *N = Root.get();
  while (!N->IsLeaf)
    N = X[N->Feature] <= N->Threshold ? N->Left.get() : N->Right.get();
  return N->LeafClass;
}

size_t DecisionTree::numSplits() const { return countSplits(Root.get()); }
size_t DecisionTree::numLeaves() const { return countLeaves(Root.get()); }
unsigned DecisionTree::depth() const { return depthOf(Root.get()); }

RuleSet DecisionTree::toRuleSet(const Dataset &Data) const {
  RuleSet RS(Label::NS);
  std::vector<Condition> Path;
  std::vector<Rule> Rules;
  collectRules(Root.get(), Path, Rules);
  for (Rule &R : Rules)
    RS.addRule(std::move(R));
  size_t DC, DI;
  RS.annotateCoverage(Data, DC, DI);
  return RS;
}

std::string DecisionTree::toString() const {
  std::string Out;
  render(Root.get(), 0, Out);
  return Out;
}

RuleSet schedfilter::learnDecisionTreeRules(const Dataset &Data) {
  return DecisionTree::train(Data).toRuleSet(Data);
}
