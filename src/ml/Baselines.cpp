//===- ml/Baselines.cpp - Trivial comparison policies -----------------------===//

#include "ml/Baselines.h"

#include <algorithm>
#include <cmath>

using namespace schedfilter;

RuleSet schedfilter::makeAlwaysSchedule() {
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS; // empty antecedent matches everything
  RS.addRule(std::move(R));
  return RS;
}

RuleSet schedfilter::makeNeverSchedule() { return RuleSet(Label::NS); }

namespace {

/// Finds the best single-feature threshold rule on feature \p F.
/// Returns the number of training errors and fills the out-parameters.
size_t bestSplitOnFeature(const Dataset &Data, unsigned F, bool &IsLessEqual,
                          double &Threshold, Label &ThenClass) {
  // Sort (value, label) pairs and sweep thresholds between distinct values.
  std::vector<std::pair<double, Label>> Vals;
  Vals.reserve(Data.size());
  size_t TotalLS = 0;
  for (const Instance &I : Data) {
    Vals.push_back({I.X[F], I.Y});
    if (I.Y == Label::LS)
      ++TotalLS;
  }
  std::sort(Vals.begin(), Vals.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  size_t TotalNS = Vals.size() - TotalLS;

  // Majority-class fallback.
  size_t BestErrors = std::min(TotalLS, TotalNS);
  IsLessEqual = true;
  Threshold = Vals.empty() ? 0.0 : Vals.front().first;
  ThenClass = TotalLS > TotalNS ? Label::LS : Label::NS;

  size_t PrefLS = 0, PrefNS = 0;
  for (size_t I = 0; I != Vals.size();) {
    double V = Vals[I].first;
    while (I != Vals.size() && Vals[I].first == V) {
      if (Vals[I].second == Label::LS)
        ++PrefLS;
      else
        ++PrefNS;
      ++I;
    }
    if (I == Vals.size())
      break; // threshold at the max value splits nothing
    // Split: X <= V -> class A, else class B.  Four assignments, two are
    // complements; evaluate "<= V is LS" and "<= V is NS".
    size_t ErrLELS = PrefNS + (TotalLS - PrefLS);
    size_t ErrLENS = PrefLS + (TotalNS - PrefNS);
    if (ErrLELS < BestErrors) {
      BestErrors = ErrLELS;
      IsLessEqual = true;
      Threshold = V;
      ThenClass = Label::LS;
    }
    if (ErrLENS < BestErrors) {
      BestErrors = ErrLENS;
      IsLessEqual = true;
      Threshold = V;
      ThenClass = Label::NS;
    }
  }
  return BestErrors;
}

/// Builds a one-rule RuleSet: "if X[F] <=/>= T then ThenClass else the
/// opposite class".  Expressed with the rule for LS so the pipeline's
/// schedule decision stays "first matching rule says LS".
RuleSet makeStump(unsigned F, bool IsLessEqual, double Threshold,
                  Label ThenClass) {
  RuleSet RS(Label::NS);
  Rule R;
  R.Conclusion = Label::LS;
  if (ThenClass == Label::LS) {
    R.Conditions.push_back({F, IsLessEqual, Threshold});
  } else {
    // "if cond then NS else LS" == "if !cond then LS else NS".  For
    // continuous features the strict complement of <= T is > T; we encode
    // it as >= nextafter(T) to stay within the <=/>= language.
    double Nudged = std::nextafter(Threshold, IsLessEqual
                                                  ? 1e308
                                                  : -1e308);
    R.Conditions.push_back({F, !IsLessEqual, Nudged});
  }
  RS.addRule(std::move(R));
  return RS;
}

} // namespace

/// Errors of the best constant (majority-class) predictor.
static size_t majorityErrors(const Dataset &Data, Label &Majority) {
  size_t LS = Data.countLabel(Label::LS);
  size_t NS = Data.size() - LS;
  Majority = LS > NS ? Label::LS : Label::NS;
  return std::min(LS, NS);
}

RuleSet schedfilter::learnSizeStump(const Dataset &Data) {
  if (Data.empty())
    return makeNeverSchedule();
  bool IsLE;
  double T;
  Label Then;
  size_t Errors = bestSplitOnFeature(Data, FeatBBLen, IsLE, T, Then);
  Label Majority;
  if (Errors >= majorityErrors(Data, Majority))
    return Majority == Label::LS ? makeAlwaysSchedule() : makeNeverSchedule();
  return makeStump(FeatBBLen, IsLE, T, Then);
}

RuleSet schedfilter::learnOneR(const Dataset &Data) {
  if (Data.empty())
    return makeNeverSchedule();
  size_t BestErrors = Data.size() + 1;
  unsigned BestF = FeatBBLen;
  bool BestLE = true;
  double BestT = 0.0;
  Label BestThen = Label::NS;
  for (unsigned F = 0; F != NumFeatures; ++F) {
    bool IsLE;
    double T;
    Label Then;
    size_t Errors = bestSplitOnFeature(Data, F, IsLE, T, Then);
    if (Errors < BestErrors) {
      BestErrors = Errors;
      BestF = F;
      BestLE = IsLE;
      BestT = T;
      BestThen = Then;
    }
  }
  Label Majority;
  if (BestErrors >= majorityErrors(Data, Majority))
    return Majority == Label::LS ? makeAlwaysSchedule() : makeNeverSchedule();
  return makeStump(BestF, BestLE, BestT, BestThen);
}
