//===- ml/Dataset.h - Training/test instances --------------------*- C++ -*-===//
///
/// \file
/// Labeled instances for the whether-to-schedule learning problem.  Each
/// instance is one basic block: a feature vector plus a boolean class
/// label, LS (schedule) or NS (don't schedule), per the paper's §2.2.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ML_DATASET_H
#define SCHEDFILTER_ML_DATASET_H

#include "features/Features.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace schedfilter {

/// Class labels.  NS first so that "default class" logic reads naturally.
enum class Label : uint8_t { NS = 0, LS = 1 };

/// Returns "LS" or "NS".
const char *getLabelName(Label L);

/// One labeled block.
struct Instance {
  FeatureVector X;
  Label Y;
};

/// A named bag of instances (typically: all blocks of one benchmark).
class Dataset {
public:
  explicit Dataset(std::string Name = "") : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  void add(Instance I) { Instances.push_back(std::move(I)); }
  void append(const Dataset &Other);

  size_t size() const { return Instances.size(); }
  bool empty() const { return Instances.empty(); }

  const Instance &operator[](size_t I) const { return Instances[I]; }

  std::vector<Instance>::const_iterator begin() const {
    return Instances.begin();
  }
  std::vector<Instance>::const_iterator end() const {
    return Instances.end();
  }

  /// Number of instances with label \p L.
  size_t countLabel(Label L) const;

  /// Writes instances as CSV: feature columns then the label name.
  void writeCsv(std::ostream &OS) const;

  /// Parses the CSV format produced by writeCsv.  Returns false (and leaves
  /// the dataset unchanged) on malformed input.
  bool readCsv(std::istream &IS);

private:
  std::string Name;
  std::vector<Instance> Instances;
};

} // namespace schedfilter

#endif // SCHEDFILTER_ML_DATASET_H
