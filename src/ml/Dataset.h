//===- ml/Dataset.h - Training/test instances --------------------*- C++ -*-===//
///
/// \file
/// Labeled instances for the whether-to-schedule learning problem.  Each
/// instance is one basic block: a feature vector plus a boolean class
/// label, LS (schedule) or NS (don't schedule), per the paper's §2.2.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ML_DATASET_H
#define SCHEDFILTER_ML_DATASET_H

#include "features/Features.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace schedfilter {

/// Class labels.  NS first so that "default class" logic reads naturally.
enum class Label : uint8_t { NS = 0, LS = 1 };

/// Returns "LS" or "NS".
const char *getLabelName(Label L);

/// One labeled block.
struct Instance {
  FeatureVector X;
  Label Y;
};

/// A flat, feature-major (columnar) view of a dataset, for algorithms that
/// scan one feature across many instances (the indexed RIPPER trainer).
/// Values are copied bit-exactly from the row-major instances, so a
/// condition evaluated against a column compares the same doubles as
/// Condition::matches against the original FeatureVector.  The view is a
/// snapshot: it does not track later mutation of the source dataset.
struct ColumnView {
  size_t NumInstances = 0;
  /// Values[F * NumInstances + i] == dataset[i].X[F].
  std::vector<double> Values;
  /// Labels[i] == dataset[i].Y.
  std::vector<Label> Labels;

  /// The contiguous column of feature \p F.
  const double *col(unsigned F) const {
    return Values.data() + static_cast<size_t>(F) * NumInstances;
  }
};

/// A named bag of instances (typically: all blocks of one benchmark).
class Dataset {
public:
  explicit Dataset(std::string Name = "") : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  void add(Instance I) { Instances.push_back(std::move(I)); }
  void append(const Dataset &Other);

  size_t size() const { return Instances.size(); }
  bool empty() const { return Instances.empty(); }

  const Instance &operator[](size_t I) const { return Instances[I]; }

  std::vector<Instance>::const_iterator begin() const {
    return Instances.begin();
  }
  std::vector<Instance>::const_iterator end() const {
    return Instances.end();
  }

  /// Number of instances with label \p L.
  size_t countLabel(Label L) const;

  /// Builds a feature-major snapshot of the instances (see ColumnView).
  ColumnView columns() const;

  /// Writes instances as CSV: feature columns then the label name.
  void writeCsv(std::ostream &OS) const;

  /// Parses the CSV format produced by writeCsv.  Returns false (and leaves
  /// the dataset unchanged) on malformed input.
  bool readCsv(std::istream &IS);

private:
  std::string Name;
  std::vector<Instance> Instances;
};

} // namespace schedfilter

#endif // SCHEDFILTER_ML_DATASET_H
