//===- ml/Serialization.h - Persisting induced filters -----------*- C++ -*-===//
///
/// \file
/// Text serialization for induced rule sets.  The paper envisions the
/// heuristic being developed and installed "at the factory" (§3): the
/// compiler team trains offline, serializes the filter, and the JIT loads
/// it at startup.  The format is line-oriented and human-editable:
///
///   schedfilter-rules v1
///   default NS
///   rule LS :- bbLen >= 7, calls <= 0.0857, loads >= 0.3793
///   rule LS :- bbLen >= 5, stores <= 0.1613
///
/// Parsing is strict: unknown feature names, operators, or malformed
/// lines fail rather than guessing -- and the failure names the line and
/// the reason (io/ParseResult.h), so a hand-edited rule file that stops
/// loading tells its editor where to look.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ML_SERIALIZATION_H
#define SCHEDFILTER_ML_SERIALIZATION_H

#include "io/ParseResult.h"
#include "ml/Rule.h"

#include <iosfwd>

namespace schedfilter {

/// Writes \p RS in the v1 text format.  Thresholds are printed with
/// %.17g, so every double round-trips bit-exactly.
void writeRuleSet(const RuleSet &RS, std::ostream &OS);

/// Parses the v1 text format; a syntax error carries the 1-based line
/// number and a specific message.  Thresholds are parsed strictly: the
/// whole token must be a finite decimal number -- "nan", "inf"/"-inf",
/// hex floats and trailing junk are all rejected with a line diagnostic
/// (a NaN threshold would silently create a never-matching condition and
/// poison RuleSet::minMatchableBBLen).  Coverage counts are not part of
/// the format (they are training artifacts) and come back zeroed.
ParseResult<RuleSet> readRuleSet(std::istream &IS);

/// A parsed rule set plus the 1-based source line of each rule, so the
/// static analyzer (analysis/RuleAnalysis.h) can report findings in the
/// io/ file:line discipline ("rules.txt:7: warning: rule #3 ...").
struct RuleSetFile {
  RuleSet Rules{Label::NS};
  std::vector<size_t> RuleLines; ///< RuleLines[i] = source line of rule i.
};

/// Like readRuleSet, but also records where each rule came from.
ParseResult<RuleSetFile> readRuleSetFile(std::istream &IS);

/// Looks up a feature index by its Table 1 name ("bbLen", "loads", ...);
/// returns NumFeatures when unknown.
unsigned findFeatureByName(const std::string &Name);

} // namespace schedfilter

#endif // SCHEDFILTER_ML_SERIALIZATION_H
