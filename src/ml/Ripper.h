//===- ml/Ripper.h - RIPPER rule induction -----------------------*- C++ -*-===//
///
/// \file
/// An implementation of Cohen's RIPPER (Repeated Incremental Pruning to
/// Produce Error Reduction, ICML'95), the rule-set induction algorithm the
/// paper uses to learn its whether-to-schedule filters (§2.3).
///
/// Structure, for a binary problem with target class = minority class:
///   1. IREP*: repeatedly grow a rule on a 2/3 "grow" split (adding the
///      condition with the best FOIL information gain until the rule covers
///      no negatives), prune it against the 1/3 "prune" split (deleting
///      final condition sequences to maximize (p-n)/(p+n)), and add it,
///      removing the instances it covers.  Stop on an MDL criterion: when
///      the total description length exceeds the best seen by more than
///      64 bits, or the pruned rule's error exceeds 50%.
///   2. Optimization (k passes): for each rule, consider the original, a
///      grown-from-scratch *replacement*, and a grown-from-the-rule
///      *revision*; keep whichever minimizes the ruleset's description
///      length.  Then mop up any still-uncovered positives with more IREP*
///      rules and delete rules that increase the description length.
///
/// All randomness (grow/prune splits) comes from a seeded Rng, so training
/// is fully deterministic.
///
/// The trainer is the repository's *indexed* engine (see Ripper.cpp): it
/// sorts each feature column once per train() call over a flat
/// Dataset::ColumnView and sweeps candidate conditions over bit-set
/// coverage of presorted, shrinking per-feature universes, instead of
/// re-sorting every feature column for every candidate condition.  The
/// pooled overload fans the per-feature sweeps across a shared TaskPool;
/// output is bit-for-bit identical to the serial overload at any job
/// count.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_ML_RIPPER_H
#define SCHEDFILTER_ML_RIPPER_H

#include "ml/Rule.h"
#include "support/Rng.h"

namespace schedfilter {

class TaskPool;

/// Tunable knobs; the defaults mirror Cohen's published settings.
struct RipperOptions {
  /// Seed for grow/prune splits.
  uint64_t Seed = 0x5eedULL;
  /// Number of optimization passes (Cohen's k; RIPPER2 uses 2).
  unsigned OptimizePasses = 2;
  /// Fraction of instances used for growing (rest prune).
  double GrowFraction = 2.0 / 3.0;
  /// MDL slack in bits before rule addition stops.
  double MdlSlackBits = 64.0;
  /// Safety caps to bound worst-case training time.
  unsigned MaxConditionsPerRule = 24;
  unsigned MaxRules = 96;
};

/// RIPPER learner: induces an ordered RuleSet for the minority class with
/// the majority class as default.
class Ripper {
public:
  explicit Ripper(RipperOptions Opts = RipperOptions());

  /// Trains on \p Data and returns the induced filter.  The returned rule
  /// set has per-rule coverage counts annotated against \p Data (Figure 4
  /// style).  An empty or single-class dataset yields an empty rule set
  /// whose default class is the majority (or NS when empty).
  RuleSet train(const Dataset &Data) const;

  /// Pooled variant: fans the per-feature candidate-condition sweeps of
  /// the grow phase out across \p Pool's workers, with a deterministic
  /// argmax reduction (lowest feature index wins ties).  Bit-for-bit the
  /// same RuleSet as the serial overload at any job count; safe to call
  /// from inside a pool task (nested loops run inline).
  RuleSet train(const Dataset &Data, TaskPool &Pool) const;

private:
  RipperOptions Opts;
};

} // namespace schedfilter

#endif // SCHEDFILTER_ML_RIPPER_H
