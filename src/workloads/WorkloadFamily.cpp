//===- workloads/WorkloadFamily.cpp - Family registry + builtins ------------===//

#include "workloads/WorkloadFamily.h"

#include "workloads/ProgramGenerator.h"

#include <algorithm>
#include <cassert>

using namespace schedfilter;

size_t WorkloadFamily::nextMethod(uint64_t /*AppId*/, Rng &Stream,
                                  const std::vector<double> &CumWeight,
                                  double TotalWeight) const {
  // The profile-weighted CDF draw, bit-for-bit the draw CompileService
  // makes for single-app streams: one uniform() per tick, upper_bound on
  // the cumulative weights.  Families overriding this must still consume
  // exactly the draws they need from Stream and nothing else -- the
  // stream Rng is the app's whole entropy budget.
  assert(!CumWeight.empty() && TotalWeight > 0.0 && "empty app profile");
  double U = Stream.uniform() * TotalWeight;
  size_t I = static_cast<size_t>(
      std::upper_bound(CumWeight.begin(), CumWeight.end(), U) -
      CumWeight.begin());
  return std::min(I, CumWeight.size() - 1);
}

namespace {

/// The two original suites as registered families: thin method tables
/// over the untouched ProgramGenerator.  Their version is the
/// ProgramGenerator's own GeneratorVersion -- the exact value these
/// benchmarks' corpus-cache keys carried before the registry existed, so
/// registration alone invalidates nothing.
class GeneratorFamily : public WorkloadFamily {
public:
  GeneratorFamily(const char *Name, const char *Display, const char *Desc,
                  std::vector<BenchmarkSpec> (*Suite)())
      : FamilyName(Name), Display(Display), Desc(Desc), Suite(Suite) {}

  const char *name() const override { return FamilyName; }
  const char *displayName() const override { return Display; }
  const char *description() const override { return Desc; }
  uint32_t version() const override { return GeneratorVersion; }
  std::vector<BenchmarkSpec> makeBenchmarkSuite() const override {
    return Suite();
  }
  Program load(const BenchmarkSpec &Params) const override {
    return ProgramGenerator(Params).generate();
  }

private:
  const char *FamilyName;
  const char *Display;
  const char *Desc;
  std::vector<BenchmarkSpec> (*Suite)();
};

void registerBuiltinFamilies(WorkloadRegistry &R) {
  // Registration order is the presentation order of --list and every
  // "known: ..." diagnostic; the two paper suites stay first.
  R.registerFamily(std::make_unique<GeneratorFamily>(
      "specjvm98", "SPECjvm98",
      "synthetic SPECjvm98 stand-ins (paper Tables 1-7)", specjvm98Suite));
  R.registerFamily(std::make_unique<GeneratorFamily>(
      "fp", "FP suite",
      "floating-point-heavy companions (paper SPECjvm98 FP mix)", fpSuite));
  R.registerFamily(makeServerLoopFamily());
  R.registerFamily(makeFpKernelFamily());
  R.registerFamily(makePtrChaseFamily());
}

} // namespace

WorkloadRegistry &WorkloadRegistry::instance() {
  // Function-local static: built-ins are registered exactly once, on
  // first access, before any parallel phase can look families up.
  static WorkloadRegistry *R = [] {
    auto *Reg = new WorkloadRegistry();
    registerBuiltinFamilies(*Reg);
    return Reg;
  }();
  return *R;
}

void WorkloadRegistry::registerFamily(std::unique_ptr<WorkloadFamily> F) {
  assert(F && "null family");
  assert(!find(F->name()) && "duplicate family name");
  Views.push_back(F.get());
  Owned.push_back(std::move(F));
}

const WorkloadFamily *WorkloadRegistry::find(const std::string &Name) const {
  for (const WorkloadFamily *F : Views)
    if (Name == F->name())
      return F;
  return nullptr;
}

const WorkloadFamily *schedfilter::findWorkloadFamily(const std::string &Name) {
  return WorkloadRegistry::instance().find(Name);
}

std::string schedfilter::familyDisplayName(const std::string &Name) {
  if (const WorkloadFamily *F = findWorkloadFamily(Name))
    return F->displayName();
  return Name;
}

Program schedfilter::generateWorkloadProgram(const BenchmarkSpec &Spec) {
  if (const WorkloadFamily *F = findWorkloadFamily(Spec.Family))
    return F->load(Spec);
  // Family-less specs (hand-built in tests, or predating the registry)
  // expand through the ProgramGenerator -- the same synthesis the
  // specjvm98/fp families run, so this branch can never diverge from a
  // registered path.
  return ProgramGenerator(Spec).generate();
}

uint32_t schedfilter::workloadGeneratorVersion(const BenchmarkSpec &Spec) {
  if (const WorkloadFamily *F = findWorkloadFamily(Spec.Family))
    return F->version();
  return GeneratorVersion;
}

const BenchmarkSpec *schedfilter::findBenchmarkSpec(const std::string &Name) {
  // One flat index over every registered family's suite, built on first
  // use.  Registration order makes the index deterministic; names are
  // globally unique across families (workloads_test pins this).
  static const std::vector<BenchmarkSpec> *All = [] {
    auto *V = new std::vector<BenchmarkSpec>();
    for (const WorkloadFamily *F : WorkloadRegistry::instance().families())
      for (BenchmarkSpec &S : F->makeBenchmarkSuite())
        V->push_back(std::move(S));
    return V;
  }();
  for (const BenchmarkSpec &S : *All)
    if (S.Name == Name)
      return &S;
  return nullptr;
}
