//===- workloads/BenchmarkSpec.h - Synthetic benchmark profiles -*- C++ -*-===//
///
/// \file
/// Parameter profiles for the synthetic stand-ins of the paper's two
/// benchmark suites: SPECjvm98 (Table 2) and the floating-point-heavy
/// "benchmarks that benefit from scheduling" suite (Table 7).
///
/// We cannot run the real Java programs offline, so each profile encodes
/// the population-level character that matters to the learning problem:
/// how large blocks are, how much instruction-level parallelism they
/// expose (independent statements per block), the opcode-category mix
/// (integer vs floating point vs memory vs calls vs system ops), and the
/// hazard density.  The generator (ProgramGenerator) expands a profile
/// into a deterministic Program given the profile's seed.  DESIGN.md §2
/// documents this substitution.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_WORKLOADS_BENCHMARKSPEC_H
#define SCHEDFILTER_WORKLOADS_BENCHMARKSPEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace schedfilter {

/// Statement kinds the generator mixes per block; weights below.
/// An "expression statement" is a small dependence tree emitted depth
/// first, exactly how a stack-machine JIT macro-expands bytecode (the
/// source of the naive instruction order scheduling improves on).
struct BenchmarkSpec {
  std::string Name;
  std::string Description;
  /// Name of the WorkloadFamily (workloads/WorkloadFamily.h) that expands
  /// this spec into a Program.  Empty on hand-built specs, which expand
  /// through the ProgramGenerator directly (generateWorkloadProgram's
  /// fallback).  Part of the spec fingerprint and the corpus-cache key.
  std::string Family;
  uint64_t Seed = 1;

  /// Program shape.
  int NumMethods = 120;
  int MinBlocksPerMethod = 2;
  int MaxBlocksPerMethod = 18;

  /// Block shape: statements per block ~ 1 + geometric; each statement is
  /// an expression tree with ~MeanExprOps operations.
  double StatementGeoP = 0.45; ///< smaller => more statements => more ILP
  int MaxStatements = 12;
  /// Probability a block is trivial (no statements: just a branch/return
  /// and perhaps one move) -- exception edges, goto blocks, and inlined
  /// accessor remnants, which dominate real Java block populations and are
  /// never worth scheduling.
  double TrivialBlockProb = 0.30;
  double MeanExprOps = 3.0;
  int MaxExprOps = 9;

  /// Statement-kind weights (relative; normalized by the generator).
  double WIntExpr = 1.0;   ///< integer arithmetic expression
  double WFloatExpr = 0.2; ///< floating-point expression
  double WMemOp = 0.5;     ///< load/modify/store sequence
  double WCall = 0.2;      ///< argument setup + call (a barrier)
  double WSystem = 0.05;   ///< system-unit instruction

  /// Probability an expression leaf is a memory load (vs a register).
  double LeafLoadProb = 0.45;
  /// Probability a float expression includes a long-latency fdiv/fsqrt.
  double FloatDivProb = 0.06;
  /// Probability a ref load is preceded by an explicit null/bounds check
  /// and tagged as potentially excepting.
  double PeiProb = 0.35;
  /// Probability a block begins with a yield point (Jikes RVM places
  /// yield points at method entries and loop back edges).
  double YieldProb = 0.20;
  /// Probability of a GC-safepoint or thread-switch pseudo-op in a block.
  double SafepointProb = 0.06;

  /// Hotness profile: exec count = 1 + MaxExec * u^HotnessSkew for
  /// u ~ U[0,1); larger skew concentrates time in fewer blocks.
  double HotnessSkew = 6.0;
  uint64_t MaxExec = 100000;
};

/// A stable 64-bit hash over every field of \p S (doubles hashed by bit
/// pattern).  Part of the corpus-cache key (io/CorpusCache.h): any edited
/// spec -- a shrunken test suite, an ablation variant -- fingerprints
/// differently from the stock benchmark of the same name, so cached
/// traces can never be served for the wrong workload.  Extending
/// BenchmarkSpec with a new field?  Hash it here, or stale cache entries
/// will survive the change.
uint64_t specFingerprint(const BenchmarkSpec &S);

/// The seven SPECjvm98 stand-ins of Table 2: compress, jess, db, javac,
/// mpegaudio, raytrace (mtrt), jack.
std::vector<BenchmarkSpec> specjvm98Suite();

/// The six FP stand-ins of Table 7: linpack, power, bh, voronoi, aes,
/// scimark.
std::vector<BenchmarkSpec> fpSuite();

/// Looks up a spec by name across every registered workload family's
/// suite (defined in WorkloadFamily.cpp); returns nullptr if absent.
const BenchmarkSpec *findBenchmarkSpec(const std::string &Name);

} // namespace schedfilter

#endif // SCHEDFILTER_WORKLOADS_BENCHMARKSPEC_H
