//===- workloads/WorkloadFamily.h - Pluggable workload families -*- C++ -*-===//
///
/// \file
/// The workload-family method table: every program population the
/// experiments run over -- the synthetic SPECjvm98 stand-ins, the FP
/// suite, and the non-JVM-shaped families that stress the filter
/// differently -- is one WorkloadFamily registration.  A family owns its
/// benchmark suite (parameter profiles), its program synthesis (load), a
/// per-family generator version (its half of the corpus-cache key), and
/// the method-draw hook the serve-stream samplers use.
///
/// Registration is one file per family plus one line in
/// registerBuiltinFamilies(); everything downstream -- corpus-cache keys,
/// suite tracing, LOOCV folds, the interleaved multi-app serve streams,
/// the tools' --workload flags -- discovers families through the
/// registry and never names a generator directly.
///
/// Determinism: load() must be a pure function of the spec (all
/// randomness from Spec.Seed), and nextMethod() a pure function of its
/// arguments -- the registry adds no state of its own, so any family mix
/// stays bit-identical at any --jobs and any cache temperature.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_WORKLOADS_WORKLOADFAMILY_H
#define SCHEDFILTER_WORKLOADS_WORKLOADFAMILY_H

#include "mir/Program.h"
#include "support/Rng.h"
#include "workloads/BenchmarkSpec.h"

#include <memory>
#include <vector>

namespace schedfilter {

/// One registered program population.  Implementations must be
/// stateless: every method is const and every output a pure function of
/// its inputs, so families are shared freely across threads.
class WorkloadFamily {
public:
  virtual ~WorkloadFamily() = default;

  /// Registry key and the family component of every corpus-cache key;
  /// lowercase [a-z0-9-], unique across registered families.
  virtual const char *name() const = 0;

  /// One-line description for --list style output.
  virtual const char *description() const = 0;

  /// Short human-readable suite title for report headers, e.g.
  /// "SPECjvm98".  Defaults to name(); families whose registry key is
  /// not the publishable spelling override it.  Benches print suites
  /// through this accessor (via familyDisplayName) instead of
  /// hand-mapping registry keys.
  virtual const char *displayName() const { return name(); }

  /// Version of this family's program synthesis, the generator half of
  /// the corpus-cache key for this family's benchmarks.  MUST be bumped
  /// by any change that alters what load() emits for some spec; bumping
  /// it invalidates this family's cached corpora and nobody else's
  /// (tests/corpuscache_test.cpp pins that isolation).
  virtual uint32_t version() const = 0;

  /// The family's benchmark suite.  Every returned spec carries
  /// Family == name() and a globally unique Name and Seed.
  virtual std::vector<BenchmarkSpec> makeBenchmarkSuite() const = 0;

  /// Expands \p Params into its deterministic Program (all randomness
  /// derives from Params.Seed; calling twice returns identical
  /// programs).
  virtual Program load(const BenchmarkSpec &Params) const = 0;

  /// Draws the invoked method for one tick of app \p AppId's invocation
  /// stream: an index into the app's method list, given the app's
  /// cumulative profile-weight distribution (\p CumWeight, with total
  /// \p TotalWeight > 0) and the app's own stream \p Rng.  The default
  /// is the profile-weighted CDF draw every family uses today -- the
  /// same draw CompileService makes for single-app streams -- so
  /// registering a family never perturbs stream replay; the hook exists
  /// so a future family can model phase behavior without touching the
  /// service.
  virtual size_t nextMethod(uint64_t AppId, Rng &Stream,
                            const std::vector<double> &CumWeight,
                            double TotalWeight) const;
};

/// The process-wide family registry, in registration order.  Built-in
/// families register lazily on first access, so lookups never race
/// static initialization; registration is not thread-safe and happens
/// before any parallel phase.
class WorkloadRegistry {
public:
  /// The singleton, with the built-in families already registered.
  static WorkloadRegistry &instance();

  /// Registers \p F; its name must not collide with a registered family.
  void registerFamily(std::unique_ptr<WorkloadFamily> F);

  /// Looks a family up by name; nullptr when absent.
  const WorkloadFamily *find(const std::string &Name) const;

  /// Every registered family, in registration order (deterministic:
  /// --list output and "known: ..." diagnostics iterate this).
  const std::vector<const WorkloadFamily *> &families() const {
    return Views;
  }

private:
  WorkloadRegistry() = default;
  std::vector<std::unique_ptr<WorkloadFamily>> Owned;
  std::vector<const WorkloadFamily *> Views;
};

/// Convenience: WorkloadRegistry::instance().find(Name).
const WorkloadFamily *findWorkloadFamily(const std::string &Name);

/// displayName() of the registered family \p Name, or \p Name itself
/// when unregistered.
std::string familyDisplayName(const std::string &Name);

/// Expands \p Spec through its family's load().  Specs without a Family
/// (hand-built test specs, pre-registry callers) fall back to the
/// ProgramGenerator, which is also what the specjvm98/fp families run --
/// so the fallback can never diverge from a registered path.
Program generateWorkloadProgram(const BenchmarkSpec &Spec);

/// The generator version the corpus-cache key carries for \p Spec: its
/// family's version(), or the ProgramGenerator's for family-less specs.
uint32_t workloadGeneratorVersion(const BenchmarkSpec &Spec);

/// Factories of the built-in non-JVM families, each defined in its own
/// translation unit (one file per family; one registry line below).
std::unique_ptr<WorkloadFamily> makeServerLoopFamily();
std::unique_ptr<WorkloadFamily> makeFpKernelFamily();
std::unique_ptr<WorkloadFamily> makePtrChaseFamily();

} // namespace schedfilter

#endif // SCHEDFILTER_WORKLOADS_WORKLOADFAMILY_H
