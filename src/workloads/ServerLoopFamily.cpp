//===- workloads/ServerLoopFamily.cpp - Server request-loop family ---------===//
//
// The "serverloop" workload family: long-running request loops of the
// kind a JIT actually hosts in a server process -- a tiny, very hot
// accept/dispatch block at every method entry feeding call- and
// memory-heavy handler blocks.  Compared with the SPECjvm98 stand-ins
// the population is flatter and smaller-blocked: most blocks are
// argument marshalling, hash probes and virtual dispatch, where the
// paper's filter should say "don't schedule" almost everywhere except
// the occasional batched-response loop.
//
// Statement emission reuses ProgramGenerator::generateBlock (the family
// differs in *population structure* -- block roles and hotness -- not in
// statement synthesis), so the family stays Verifier-clean by
// construction.
//
//===----------------------------------------------------------------------===//

#include "workloads/ProgramGenerator.h"
#include "workloads/WorkloadFamily.h"

#include <algorithm>
#include <cmath>

using namespace schedfilter;

namespace {

/// Bump on any change to this family's suite parameters or to the
/// program structure below; invalidates serverloop corpus-cache entries
/// and nobody else's.
constexpr uint32_t ServerLoopVersion = 1;

BenchmarkSpec serverSpec(const char *Name, const char *Desc, uint64_t Seed) {
  BenchmarkSpec S;
  S.Name = Name;
  S.Description = Desc;
  S.Family = "serverloop";
  S.Seed = Seed;
  // Server-code population defaults: small branchy blocks, many calls,
  // plenty of exception checks, yield points on every loop back edge.
  S.StatementGeoP = 0.60;
  S.MeanExprOps = 1.9;
  S.TrivialBlockProb = 0.40;
  S.WIntExpr = 0.9;
  S.WFloatExpr = 0.02;
  S.WMemOp = 1.2;
  S.WCall = 0.70;
  S.WSystem = 0.08;
  S.LeafLoadProb = 0.40;
  S.PeiProb = 0.50;
  S.YieldProb = 0.30;
  S.HotnessSkew = 7.0;
  return S;
}

class ServerLoopFamily : public WorkloadFamily {
public:
  const char *name() const override { return "serverloop"; }
  const char *description() const override {
    return "server-style request loops: hot dispatch blocks feeding "
           "call/memory-heavy handlers";
  }
  uint32_t version() const override { return ServerLoopVersion; }

  std::vector<BenchmarkSpec> makeBenchmarkSuite() const override {
    std::vector<BenchmarkSpec> Suite;

    // httpd: request parse + route dispatch; the most call-bound member.
    {
      BenchmarkSpec S = serverSpec(
          "httpd", "HTTP server request parsing and handler dispatch",
          0x5E0501);
      S.WCall = 0.85;
      S.TrivialBlockProb = 0.44;
      Suite.push_back(S);
    }

    // memkv: in-memory key-value store; hash probes and bucket updates
    // dominate, so loads/stores outweigh calls.
    {
      BenchmarkSpec S = serverSpec(
          "memkv", "In-memory key-value store serving get/put requests",
          0x5E0502);
      S.WMemOp = 1.8;
      S.WCall = 0.40;
      S.LeafLoadProb = 0.50;
      S.PeiProb = 0.55;
      Suite.push_back(S);
    }

    // rpcgw: RPC gateway; marshalling arithmetic plus system-unit work
    // (checksums, special registers) on every hop.
    {
      BenchmarkSpec S = serverSpec(
          "rpcgw", "RPC gateway marshalling requests between services",
          0x5E0503);
      S.WIntExpr = 1.2;
      S.WSystem = 0.16;
      S.MeanExprOps = 2.2;
      Suite.push_back(S);
    }

    return Suite;
  }

  Program load(const BenchmarkSpec &Spec) const override {
    ProgramGenerator Gen(Spec);
    Rng Master(Spec.Seed);
    Program P(Spec.Name);

    for (int M = 0; M != Spec.NumMethods; ++M) {
      Rng MethodRng = Master.split();
      Method Meth(Spec.Name + "::svc" + std::to_string(M));
      int NumBlocks = MethodRng.range(Spec.MinBlocksPerMethod,
                                      Spec.MaxBlocksPerMethod);

      // Block 0 is the accept/dispatch loop head: one or two statements
      // (poll the queue, test the opcode), executed once per request --
      // the hottest block of the method by an order of magnitude, and
      // far too small for scheduling to pay.
      {
        BasicBlock BB = Gen.generateBlock(MethodRng, MethodRng.range(1, 2),
                                          /*EndWithTerminator=*/true);
        uint64_t Requests =
            Spec.MaxExec * (4 + static_cast<uint64_t>(MethodRng.below(13)));
        BB.setExecCount(Requests);
        Meth.addBlock(std::move(BB));
      }

      // Handler blocks: each serves some fraction of the requests (the
      // route distribution), with the same skewed-but-flatter hotness
      // shape as the generator's -- no handler outruns its dispatcher.
      for (int B = 1; B < NumBlocks; ++B) {
        int NumStatements =
            MethodRng.chance(Spec.TrivialBlockProb)
                ? 0
                : std::min(Spec.MaxStatements,
                           MethodRng.geometric(Spec.StatementGeoP));
        BasicBlock BB = Gen.generateBlock(MethodRng, NumStatements,
                                          /*EndWithTerminator=*/true);
        double U = MethodRng.uniform();
        uint64_t Exec =
            1 + static_cast<uint64_t>(std::pow(U, Spec.HotnessSkew) *
                                      static_cast<double>(Spec.MaxExec));
        // A rare batched-response loop: the one handler shape that is
        // both statement-rich and hot enough for scheduling to matter.
        if (NumStatements >= 5)
          Exec *= 8;
        BB.setExecCount(Exec);
        Meth.addBlock(std::move(BB));
      }
      P.addMethod(std::move(Meth));
    }
    return P;
  }
};

} // namespace

std::unique_ptr<WorkloadFamily> schedfilter::makeServerLoopFamily() {
  return std::make_unique<ServerLoopFamily>();
}
