//===- workloads/BenchmarkSpec.cpp - Synthetic benchmark profiles ----------===//

#include "workloads/BenchmarkSpec.h"

#include "io/TraceStore.h"

using namespace schedfilter;

uint64_t schedfilter::specFingerprint(const BenchmarkSpec &S) {
  // Canonical little-endian serialization of every generator input,
  // hashed with the one FNV-1a implementation (io/TraceStore.h).
  // Description is presentation-only and deliberately excluded.
  std::string B;
  wire::putString(B, S.Name);
  wire::putU64(B, S.Seed);
  wire::putU64(B, static_cast<uint64_t>(S.NumMethods));
  wire::putU64(B, static_cast<uint64_t>(S.MinBlocksPerMethod));
  wire::putU64(B, static_cast<uint64_t>(S.MaxBlocksPerMethod));
  wire::putF64(B, S.StatementGeoP);
  wire::putU64(B, static_cast<uint64_t>(S.MaxStatements));
  wire::putF64(B, S.TrivialBlockProb);
  wire::putF64(B, S.MeanExprOps);
  wire::putU64(B, static_cast<uint64_t>(S.MaxExprOps));
  wire::putF64(B, S.WIntExpr);
  wire::putF64(B, S.WFloatExpr);
  wire::putF64(B, S.WMemOp);
  wire::putF64(B, S.WCall);
  wire::putF64(B, S.WSystem);
  wire::putF64(B, S.LeafLoadProb);
  wire::putF64(B, S.FloatDivProb);
  wire::putF64(B, S.PeiProb);
  wire::putF64(B, S.YieldProb);
  wire::putF64(B, S.SafepointProb);
  wire::putF64(B, S.HotnessSkew);
  wire::putU64(B, S.MaxExec);
  // Family joined the spec after the fields above; it is a generator
  // input (it selects which family's load() runs), so it must be part of
  // the fingerprint -- a spec reassigned to another family can never be
  // served that family's stale trace.
  wire::putString(B, S.Family);
  return wire::fnv1a(B.data(), B.size());
}

namespace {

BenchmarkSpec base(const std::string &Name, const std::string &Desc,
                   uint64_t Seed) {
  BenchmarkSpec S;
  S.Name = Name;
  S.Description = Desc;
  S.Seed = Seed;
  return S;
}

} // namespace

std::vector<BenchmarkSpec> schedfilter::specjvm98Suite() {
  std::vector<BenchmarkSpec> Suite;

  // compress: LZW compression; integer/shift heavy with table loads and
  // stores, moderate block sizes, tight hot loops.
  {
    BenchmarkSpec S = base("compress",
                           "Java version of 129.compress from SPEC CPU95",
                           0xC0301);
    S.WIntExpr = 1.4;
    S.WFloatExpr = 0.02;
    S.WMemOp = 0.9;
    S.WCall = 0.15;
    S.WSystem = 0.03;
    S.StatementGeoP = 0.68;
    S.MeanExprOps = 2.4;
    S.LeafLoadProb = 0.40;
    S.HotnessSkew = 8.0;
    Suite.push_back(S);
  }

  // jess: expert-system shell; branchy, call-rich, small blocks, mostly
  // pointer chasing through the Rete network.
  {
    BenchmarkSpec S = base("jess",
                           "Puzzle-solving expert system shell (CLIPS-based)",
                           0xC0302);
    S.WIntExpr = 0.9;
    S.WFloatExpr = 0.05;
    S.WMemOp = 1.0;
    S.WCall = 0.60;
    S.WSystem = 0.04;
    S.StatementGeoP = 0.55;
    S.MeanExprOps = 2.0;
    S.TrivialBlockProb = 0.38;
    S.LeafLoadProb = 0.35;
    S.PeiProb = 0.45;
    Suite.push_back(S);
  }

  // db: in-memory database; dominated by loads/stores and comparisons,
  // small blocks, very call-heavy (address book operations).
  {
    BenchmarkSpec S = base("db",
                           "Builds an in-memory database and queries it",
                           0xC0303);
    S.WIntExpr = 0.7;
    S.WFloatExpr = 0.02;
    S.WMemOp = 1.6;
    S.WCall = 0.50;
    S.WSystem = 0.05;
    S.StatementGeoP = 0.55;
    S.MeanExprOps = 1.8;
    S.TrivialBlockProb = 0.38;
    S.LeafLoadProb = 0.45;
    S.PeiProb = 0.50;
    Suite.push_back(S);
  }

  // javac: the JDK 1.0.2 compiler; many methods, very branchy, small
  // blocks, rich in virtual calls; hardly any floating point.
  {
    BenchmarkSpec S = base("javac",
                           "Java source-to-bytecode compiler from JDK 1.0.2",
                           0xC0304);
    S.NumMethods = 170;
    S.WIntExpr = 1.0;
    S.WFloatExpr = 0.01;
    S.WMemOp = 1.0;
    S.WCall = 0.70;
    S.WSystem = 0.05;
    S.StatementGeoP = 0.58;
    S.MeanExprOps = 1.8;
    S.TrivialBlockProb = 0.40;
    S.LeafLoadProb = 0.35;
    S.PeiProb = 0.45;
    S.YieldProb = 0.25;
    Suite.push_back(S);
  }

  // mpegaudio: MP3 decoding; floating-point heavy with wide independent
  // filter-bank expressions -- the SPECjvm98 member that benefits most
  // from scheduling.
  {
    BenchmarkSpec S = base("mpegaudio", "Decodes an MPEG-3 audio file",
                           0xC0305);
    S.WIntExpr = 0.6;
    S.WFloatExpr = 1.6;
    S.WMemOp = 0.7;
    S.WCall = 0.10;
    S.WSystem = 0.02;
    S.StatementGeoP = 0.64;
    S.MeanExprOps = 3.0;
    S.TrivialBlockProb = 0.28;
    S.MaxExprOps = 12;
    S.LeafLoadProb = 0.50;
    S.HotnessSkew = 9.0;
    Suite.push_back(S);
  }

  // raytrace: dinosaur-scene ray tracer; mixed float geometry math and
  // pointer loads, medium blocks.
  {
    BenchmarkSpec S = base("raytrace",
                           "Raytracer over a scene depicting a dinosaur",
                           0xC0306);
    S.WIntExpr = 0.7;
    S.WFloatExpr = 1.0;
    S.WMemOp = 0.9;
    S.WCall = 0.35;
    S.WSystem = 0.03;
    S.StatementGeoP = 0.68;
    S.MeanExprOps = 2.4;
    S.PeiProb = 0.40;
    Suite.push_back(S);
  }

  // jack: parser generator; lexer/IO dominated -- calls, branches, small
  // integer blocks, a few system ops.
  {
    BenchmarkSpec S = base("jack",
                           "Java parser generator with lexical analysis",
                           0xC0307);
    S.WIntExpr = 1.0;
    S.WFloatExpr = 0.02;
    S.WMemOp = 0.9;
    S.WCall = 0.65;
    S.WSystem = 0.08;
    S.StatementGeoP = 0.57;
    S.MeanExprOps = 1.9;
    S.TrivialBlockProb = 0.40;
    S.LeafLoadProb = 0.35;
    S.YieldProb = 0.25;
    Suite.push_back(S);
  }

  for (BenchmarkSpec &S : Suite)
    S.Family = "specjvm98";
  return Suite;
}

std::vector<BenchmarkSpec> schedfilter::fpSuite() {
  std::vector<BenchmarkSpec> Suite;

  // linpack: dense linear algebra; long blocks of independent fmadds over
  // array loads -- the canonical scheduling winner.
  {
    BenchmarkSpec S = base("linpack",
                           "Numerically intensive FP benchmark (daxpy etc.)",
                           0xF0401);
    S.WIntExpr = 0.4;
    S.WFloatExpr = 2.0;
    S.WMemOp = 0.8;
    S.WCall = 0.06;
    S.WSystem = 0.01;
    S.StatementGeoP = 0.54;
    S.MeanExprOps = 3.8;
    S.TrivialBlockProb = 0.28;
    S.MaxExprOps = 12;
    S.LeafLoadProb = 0.58;
    S.HotnessSkew = 10.0;
    Suite.push_back(S);
  }

  // power: power-pricing optimization; FP expression trees over a radial
  // network, moderate calls.
  {
    BenchmarkSpec S = base("power",
                           "Power pricing system optimization solver",
                           0xF0402);
    S.WIntExpr = 0.5;
    S.WFloatExpr = 1.6;
    S.WMemOp = 0.7;
    S.WCall = 0.18;
    S.WSystem = 0.02;
    S.StatementGeoP = 0.58;
    S.MeanExprOps = 3.0;
    S.TrivialBlockProb = 0.28;
    S.FloatDivProb = 0.10;
    Suite.push_back(S);
  }

  // bh: Barnes-Hut N-body; FP force kernels plus pointer loads through
  // the oct-tree.
  {
    BenchmarkSpec S = base("bh", "Barnes-Hut N-body force computation",
                           0xF0403);
    S.WIntExpr = 0.5;
    S.WFloatExpr = 1.4;
    S.WMemOp = 1.0;
    S.WCall = 0.22;
    S.WSystem = 0.02;
    S.StatementGeoP = 0.60;
    S.MeanExprOps = 2.9;
    S.TrivialBlockProb = 0.28;
    S.PeiProb = 0.45;
    S.FloatDivProb = 0.12;
    Suite.push_back(S);
  }

  // voronoi: recursive geometric code; FP determinants plus heavy ref
  // loads, smaller blocks than the dense kernels.
  {
    BenchmarkSpec S = base("voronoi",
                           "Voronoi diagram of points, recursively on a tree",
                           0xF0404);
    S.WIntExpr = 0.6;
    S.WFloatExpr = 1.1;
    S.WMemOp = 1.1;
    S.WCall = 0.30;
    S.WSystem = 0.02;
    S.StatementGeoP = 0.60;
    S.MeanExprOps = 2.6;
    S.PeiProb = 0.50;
    Suite.push_back(S);
  }

  // aes: block cipher; wide integer ILP (xors/shifts/table loads) whose
  // load latencies scheduling hides well.
  {
    BenchmarkSpec S = base("aes", "NIST AES standard encryption test vectors",
                           0xF0405);
    S.WIntExpr = 1.8;
    S.WFloatExpr = 0.02;
    S.WMemOp = 1.2;
    S.WCall = 0.08;
    S.WSystem = 0.02;
    S.StatementGeoP = 0.55;
    S.MeanExprOps = 3.3;
    S.TrivialBlockProb = 0.28;
    S.MaxExprOps = 12;
    S.LeafLoadProb = 0.58;
    S.HotnessSkew = 9.0;
    Suite.push_back(S);
  }

  // scimark: FFT/SOR/MonteCarlo/LU kernels; big FP blocks with high ILP.
  {
    BenchmarkSpec S = base("scimark",
                           "Scientific and numerical computation kernels",
                           0xF0406);
    S.WIntExpr = 0.5;
    S.WFloatExpr = 1.8;
    S.WMemOp = 0.8;
    S.WCall = 0.10;
    S.WSystem = 0.01;
    S.StatementGeoP = 0.56;
    S.MeanExprOps = 3.6;
    S.TrivialBlockProb = 0.28;
    S.MaxExprOps = 12;
    S.LeafLoadProb = 0.55;
    S.HotnessSkew = 9.0;
    Suite.push_back(S);
  }

  for (BenchmarkSpec &S : Suite)
    S.Family = "fp";
  return Suite;
}

// findBenchmarkSpec lives in WorkloadFamily.cpp: it indexes every
// registered family's suite, not just the two defined here.
