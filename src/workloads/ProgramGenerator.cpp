//===- workloads/ProgramGenerator.cpp - Spec -> Program --------------------===//

#include "workloads/ProgramGenerator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace schedfilter;

namespace {

/// Live-in register windows.  Block-local temporaries allocate upward
/// from FirstTemp.
constexpr Reg FirstIntLiveIn = 0;
constexpr Reg NumIntLiveIns = 24;
constexpr Reg FirstFloatLiveIn = 32;
constexpr Reg NumFloatLiveIns = 16;
constexpr Reg FirstTemp = 64;

/// Per-block emission state: available values per register class and a
/// fresh-temporary counter.
struct BlockBuilder {
  const BenchmarkSpec &Spec;
  BasicBlock &BB;
  Rng &R;
  std::vector<Reg> IntVals;
  std::vector<Reg> FloatVals;
  Reg NextTemp = FirstTemp;
  /// Root value of the most recent statement; the block's conditional
  /// branch tests it, as in "compute x; if (x < y) ..." source code.  This
  /// keeps the branch condition on the dependence chain instead of being
  /// freely hoistable.
  Reg LastIntVal = FirstIntLiveIn;
  Reg LastFloatVal = FirstFloatLiveIn;
  bool LastWasFloat = false;

  BlockBuilder(const BenchmarkSpec &Spec, BasicBlock &BB, Rng &R)
      : Spec(Spec), BB(BB), R(R) {
    for (Reg I = 0; I != NumIntLiveIns; ++I)
      IntVals.push_back(FirstIntLiveIn + I);
    for (Reg I = 0; I != NumFloatLiveIns; ++I)
      FloatVals.push_back(FirstFloatLiveIn + I);
  }

  Reg freshTemp() { return NextTemp++; }

  Reg pickInt() {
    return IntVals[R.below(static_cast<uint32_t>(IntVals.size()))];
  }
  Reg pickFloat() {
    return FloatVals[R.below(static_cast<uint32_t>(FloatVals.size()))];
  }

  void noteInt(Reg Rg) { IntVals.push_back(Rg); }
  void noteFloat(Reg Rg) { FloatVals.push_back(Rg); }

  /// Emits an integer leaf; returns the register holding its value.
  Reg emitIntLeaf() {
    if (R.chance(Spec.LeafLoadProb)) {
      Reg Addr = pickInt();
      Reg Dst = freshTemp();
      bool IsRef = R.chance(0.4);
      uint16_t Attrs = 0;
      if (IsRef && R.chance(Spec.PeiProb)) {
        if (R.chance(0.5))
          BB.append(Instruction(Opcode::NullCheck, {}, {Addr}));
        else
          Attrs = AttrPEI; // un-proven null check folded into the load
      }
      BB.append(Instruction(IsRef ? Opcode::LoadRef : Opcode::LoadInt, {Dst},
                            {Addr}, Attrs));
      noteInt(Dst);
      return Dst;
    }
    if (R.chance(0.25)) {
      Reg Dst = freshTemp();
      BB.append(Instruction(Opcode::LoadConst, {Dst}, {}));
      noteInt(Dst);
      return Dst;
    }
    return pickInt(); // reuse an existing value: no instruction
  }

  /// Emits a floating-point leaf.
  Reg emitFloatLeaf() {
    if (R.chance(Spec.LeafLoadProb)) {
      Reg Addr = pickInt();
      Reg Dst = freshTemp();
      uint16_t Attrs = R.chance(Spec.PeiProb * 0.5) ? AttrPEI : 0;
      BB.append(Instruction(Opcode::LoadFloat, {Dst}, {Addr}, Attrs));
      noteFloat(Dst);
      return Dst;
    }
    return pickFloat();
  }

  /// Emits an expression tree with approximately \p Ops internal
  /// operations, depth first (the JIT's naive order), and returns the
  /// register holding the root value.
  Reg emitIntExpr(int Ops) {
    if (Ops <= 0)
      return emitIntLeaf();
    int LeftOps = Ops > 1 ? R.range(0, Ops - 1) : 0;
    Reg A = emitIntExpr(LeftOps);
    Reg B = emitIntExpr(Ops - 1 - LeftOps);
    static const Opcode Binops[] = {Opcode::Add, Opcode::Sub, Opcode::And,
                                    Opcode::Or,  Opcode::Xor, Opcode::Shl,
                                    Opcode::Shr, Opcode::Add, Opcode::Add};
    Opcode Op = R.chance(0.06)
                    ? Opcode::Mul
                    : Binops[R.below(sizeof(Binops) / sizeof(Binops[0]))];
    if (Op == Opcode::Mul && R.chance(0.12))
      Op = Opcode::Div;
    Reg Dst = freshTemp();
    BB.append(Instruction(Op, {Dst}, {A, B}));
    noteInt(Dst);
    return Dst;
  }

  Reg emitFloatExpr(int Ops) {
    if (Ops <= 0)
      return emitFloatLeaf();
    int LeftOps = Ops > 1 ? R.range(0, Ops - 1) : 0;
    Reg A = emitFloatExpr(LeftOps);
    Reg B = emitFloatExpr(Ops - 1 - LeftOps);
    Reg Dst = freshTemp();
    if (R.chance(Spec.FloatDivProb)) {
      BB.append(Instruction(R.chance(0.3) ? Opcode::FSqrt : Opcode::FDiv,
                            {Dst}, {A, B}));
    } else if (R.chance(0.25)) {
      Reg C = emitFloatLeaf();
      BB.append(Instruction(Opcode::FMAdd, {Dst}, {A, B, C}));
    } else {
      static const Opcode FOps[] = {Opcode::FAdd, Opcode::FSub, Opcode::FMul,
                                    Opcode::FMul};
      BB.append(
          Instruction(FOps[R.below(sizeof(FOps) / sizeof(FOps[0]))], {Dst},
                      {A, B}));
    }
    noteFloat(Dst);
    return Dst;
  }

  /// Samples the per-statement operation budget.
  int sampleExprOps() {
    double P = 1.0 / std::max(1.2, Spec.MeanExprOps);
    return std::min(Spec.MaxExprOps, R.geometric(P));
  }

  void emitIntStatement() {
    Reg V = emitIntExpr(sampleExprOps());
    LastIntVal = V;
    LastWasFloat = false;
    if (R.chance(0.45)) {
      Reg Addr = pickInt();
      bool IsRef = R.chance(0.25);
      uint16_t Attrs = R.chance(Spec.PeiProb * 0.3) ? AttrPEI : 0;
      BB.append(Instruction(IsRef ? Opcode::StoreRef : Opcode::StoreInt, {},
                            {V, Addr}, Attrs));
    }
  }

  void emitFloatStatement() {
    Reg V = emitFloatExpr(sampleExprOps());
    LastFloatVal = V;
    LastWasFloat = true;
    // FP kernels keep intermediates in registers and store less often than
    // pointer code; fewer stores also means fewer cross-statement memory
    // serializations, which is what makes these blocks schedulable.
    if (R.chance(0.28)) {
      Reg Addr = pickInt();
      BB.append(Instruction(Opcode::StoreFloat, {}, {V, Addr}));
    }
  }

  /// Load/modify/store: the pointer-update shape of db-like code.
  void emitMemStatement() {
    Reg Addr = pickInt();
    Reg T = freshTemp();
    uint16_t Attrs = R.chance(Spec.PeiProb) ? AttrPEI : 0;
    bool IsRef = R.chance(0.5);
    BB.append(Instruction(IsRef ? Opcode::LoadRef : Opcode::LoadInt, {T},
                          {Addr}, Attrs));
    noteInt(T);
    Reg U = T;
    if (R.chance(0.7)) {
      U = freshTemp();
      BB.append(Instruction(Opcode::AddImm, {U}, {T}));
      noteInt(U);
    }
    BB.append(Instruction(IsRef ? Opcode::StoreRef : Opcode::StoreInt, {},
                          {U, pickInt()}));
    LastIntVal = U;
    LastWasFloat = false;
  }

  void emitCallStatement() {
    // Argument setup, then the (barrier) call.
    int NumArgs = R.range(0, 2);
    for (int A = 0; A != NumArgs; ++A)
      (void)emitIntExpr(R.range(0, 1));
    Reg Ret = freshTemp();
    bool Virtual = R.chance(0.5);
    BB.append(Instruction(Virtual ? Opcode::CallVirtual : Opcode::Call, {Ret},
                          {pickInt()}));
    noteInt(Ret);
    LastIntVal = Ret;
    LastWasFloat = false;
  }

  void emitSystemStatement() {
    double U = R.uniform();
    if (U < 0.4) {
      Reg Dst = freshTemp();
      BB.append(Instruction(Opcode::SysRegRead, {Dst}, {}));
      noteInt(Dst);
    } else if (U < 0.8) {
      BB.append(Instruction(Opcode::SysRegWrite, {}, {pickInt()}));
    } else {
      BB.append(Instruction(Opcode::MemBar, {}, {}));
    }
  }

  void emitStatement() {
    std::vector<double> W = {Spec.WIntExpr, Spec.WFloatExpr, Spec.WMemOp,
                             Spec.WCall, Spec.WSystem};
    switch (R.pickWeighted(W)) {
    case 0:
      emitIntStatement();
      break;
    case 1:
      emitFloatStatement();
      break;
    case 2:
      emitMemStatement();
      break;
    case 3:
      emitCallStatement();
      break;
    default:
      emitSystemStatement();
      break;
    }
  }
};

} // namespace

BasicBlock ProgramGenerator::generateBlock(Rng &R, int NumStatements,
                                           bool EndWithTerminator) const {
  BasicBlock BB("bb", 1);
  BlockBuilder Builder(Spec, BB, R);

  if (R.chance(Spec.YieldProb))
    BB.append(Instruction(Opcode::YieldPoint, {}, {}));

  // Trivial blocks carry at most one leftover move before the terminator.
  if (NumStatements == 0 && R.chance(0.5)) {
    Reg Dst = Builder.freshTemp();
    BB.append(Instruction(Opcode::Move, {Dst}, {Builder.pickInt()}));
    Builder.noteInt(Dst);
    Builder.LastIntVal = Dst;
  }

  for (int S = 0; S != NumStatements; ++S) {
    Builder.emitStatement();
    if (R.chance(Spec.SafepointProb)) {
      if (R.chance(0.3))
        BB.append(Instruction(Opcode::ThreadSwitchPoint, {}, {}));
      else
        BB.append(Instruction(Opcode::GcSafepoint, {}, {}));
    }
  }

  if (EndWithTerminator) {
    double U = R.uniform();
    if (U < 0.62) {
      // Conditional branch testing the block's most recent result: the
      // comparison is chained onto the computation, not freely hoistable.
      Reg Cond = Builder.freshTemp();
      if (Builder.LastWasFloat)
        BB.append(Instruction(Opcode::FCmp, {Cond},
                              {Builder.LastFloatVal, Builder.pickFloat()}));
      else
        BB.append(Instruction(Opcode::Cmp, {Cond},
                              {Builder.LastIntVal, Builder.pickInt()}));
      BB.append(Instruction(Opcode::BrCond, {}, {Cond}));
    } else if (U < 0.82) {
      BB.append(Instruction(Opcode::Br, {}, {}));
    } else {
      BB.append(Instruction(Opcode::Ret, {}, {}));
    }
  }
  return BB;
}

Program ProgramGenerator::generate() const {
  Rng Master(Spec.Seed);
  Program P(Spec.Name);

  for (int M = 0; M != Spec.NumMethods; ++M) {
    Rng MethodRng = Master.split();
    Method Meth(Spec.Name + "::m" + std::to_string(M));
    int NumBlocks =
        MethodRng.range(Spec.MinBlocksPerMethod, Spec.MaxBlocksPerMethod);

    for (int B = 0; B != NumBlocks; ++B) {
      int NumStatements =
          MethodRng.chance(Spec.TrivialBlockProb)
              ? 0
              : std::min(Spec.MaxStatements,
                         MethodRng.geometric(Spec.StatementGeoP));
      BasicBlock BB =
          generateBlock(MethodRng, NumStatements, /*EndWithTerminator=*/true);

      // Hotness: a few blocks soak up most of the execution counts, and
      // hot blocks skew toward the statement-rich ones -- hot inner loops
      // are the unrolled/inlined compute kernels, which is also why the
      // paper finds scheduling worth preserving on a minority of blocks.
      double U = MethodRng.uniform();
      uint64_t Exec =
          1 + static_cast<uint64_t>(std::pow(U, Spec.HotnessSkew) *
                                    static_cast<double>(Spec.MaxExec));
      if (NumStatements >= 5)
        Exec *= 32;
      else if (NumStatements >= 3)
        Exec *= 6;
      else if (NumStatements == 2)
        Exec *= 2;
      BB.setExecCount(Exec);
      Meth.addBlock(std::move(BB));
    }
    P.addMethod(std::move(Meth));
  }
  return P;
}

std::vector<Program>
schedfilter::generateSuite(const std::vector<BenchmarkSpec> &Suite) {
  std::vector<Program> Programs;
  Programs.reserve(Suite.size());
  for (const BenchmarkSpec &S : Suite)
    Programs.push_back(ProgramGenerator(S).generate());
  return Programs;
}
