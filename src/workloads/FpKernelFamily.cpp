//===- workloads/FpKernelFamily.cpp - FP loop-nest/superblock family -------===//
//
// The "fpkernel" workload family: unrolled floating-point loop nests in
// the shape SNIPPETS.md Snippets 1-2 (the VLIW LoopCompiler) compile --
// a cold prologue, one or more long superblocks holding the unrolled
// loop body, and a cold epilogue.  Unrolling concatenates U copies of an
// independent body, so the kernel blocks carry exactly the cross-
// statement ILP a list scheduler converts into overlapped FP latencies:
// this family is the filter's "schedule" pole, the opposite extreme from
// ptrchase, and the transfer target EXPERIMENTS.md's per-family section
// measures the SPECjvm98-trained filter against.
//
// Statement emission reuses ProgramGenerator::generateBlock with the
// statement count forced to body x unroll -- the family controls block
// length and hotness directly instead of sampling the geometric.
//
//===----------------------------------------------------------------------===//

#include "workloads/ProgramGenerator.h"
#include "workloads/WorkloadFamily.h"

#include <algorithm>
#include <cmath>

using namespace schedfilter;

namespace {

/// Bump on any change to this family's suite parameters or the unroll
/// structure below; invalidates fpkernel corpus-cache entries only.
constexpr uint32_t FpKernelVersion = 1;

BenchmarkSpec kernelSpec(const char *Name, const char *Desc, uint64_t Seed) {
  BenchmarkSpec S;
  S.Name = Name;
  S.Description = Desc;
  S.Family = "fpkernel";
  S.Seed = Seed;
  // Dense-kernel population: almost all FP, long expressions over array
  // loads, few calls, few hazards beyond the back-edge yield point.
  S.MinBlocksPerMethod = 3; // prologue + >= 1 kernel + epilogue
  S.MaxBlocksPerMethod = 6;
  S.MeanExprOps = 3.6;
  S.MaxExprOps = 12;
  S.WIntExpr = 0.3;
  S.WFloatExpr = 2.2;
  S.WMemOp = 0.6;
  S.WCall = 0.02;
  S.WSystem = 0.01;
  S.LeafLoadProb = 0.58;
  S.PeiProb = 0.12;
  S.YieldProb = 0.15;
  S.SafepointProb = 0.02;
  S.HotnessSkew = 10.0;
  return S;
}

class FpKernelFamily : public WorkloadFamily {
public:
  const char *name() const override { return "fpkernel"; }
  const char *description() const override {
    return "unrolled FP loop-nest superblocks (cold prologue/epilogue, "
           "hot wide kernels)";
  }
  uint32_t version() const override { return FpKernelVersion; }

  std::vector<BenchmarkSpec> makeBenchmarkSuite() const override {
    std::vector<BenchmarkSpec> Suite;

    // saxpy-unroll: the canonical streaming kernel; maximal load share.
    {
      BenchmarkSpec S = kernelSpec(
          "saxpy-unroll", "Unrolled saxpy/daxpy streaming FP kernels",
          0xFB0601);
      S.LeafLoadProb = 0.62;
      Suite.push_back(S);
    }

    // stencil9: 9-point stencil sweeps; wider expressions, some divides
    // at the boundary normalization.
    {
      BenchmarkSpec S = kernelSpec(
          "stencil9", "9-point stencil sweeps over a 2-D grid", 0xFB0602);
      S.MeanExprOps = 4.0;
      S.FloatDivProb = 0.10;
      Suite.push_back(S);
    }

    // dotprod-sb: reduction kernels; fewer stores, FMAdd-rich bodies.
    {
      BenchmarkSpec S = kernelSpec(
          "dotprod-sb", "Dot-product reduction superblocks", 0xFB0603);
      S.WMemOp = 0.4;
      Suite.push_back(S);
    }

    return Suite;
  }

  Program load(const BenchmarkSpec &Spec) const override {
    ProgramGenerator Gen(Spec);
    Rng Master(Spec.Seed);
    Program P(Spec.Name);

    for (int M = 0; M != Spec.NumMethods; ++M) {
      Rng MethodRng = Master.split();
      Method Meth(Spec.Name + "::kern" + std::to_string(M));
      int NumBlocks = std::max(3, MethodRng.range(Spec.MinBlocksPerMethod,
                                                  Spec.MaxBlocksPerMethod));

      // Prologue: loop setup and trip-count checks, executed once per
      // call of the method.
      {
        BasicBlock BB = Gen.generateBlock(MethodRng, MethodRng.range(1, 2),
                                          /*EndWithTerminator=*/true);
        BB.setExecCount(1 + MethodRng.below(32));
        Meth.addBlock(std::move(BB));
      }

      // Kernel superblocks: each is one unrolled loop body -- U copies
      // of a short independent body concatenated into a single long
      // block, soaking up nearly all of the method's execution count.
      for (int B = 1; B + 1 < NumBlocks; ++B) {
        int Unroll = MethodRng.range(2, 8);
        int Body = MethodRng.range(2, 4);
        BasicBlock BB = Gen.generateBlock(MethodRng, Unroll * Body,
                                          /*EndWithTerminator=*/true);
        double U = MethodRng.uniform();
        uint64_t Trips =
            1 + static_cast<uint64_t>(std::pow(U, Spec.HotnessSkew / 2.0) *
                                      static_cast<double>(Spec.MaxExec));
        // An unrolled block executes trip/U times but the nest around it
        // still dominates the method -- scale like the generator's
        // statement-rich multiplier so kernels dwarf their prologues.
        BB.setExecCount(Trips * 32);
        Meth.addBlock(std::move(BB));
      }

      // Epilogue: remainder iterations and the reduction tail; cool.
      {
        BasicBlock BB = Gen.generateBlock(MethodRng, MethodRng.range(0, 2),
                                          /*EndWithTerminator=*/true);
        BB.setExecCount(1 + MethodRng.below(32));
        Meth.addBlock(std::move(BB));
      }
      P.addMethod(std::move(Meth));
    }
    return P;
  }
};

} // namespace

std::unique_ptr<WorkloadFamily> schedfilter::makeFpKernelFamily() {
  return std::make_unique<FpKernelFamily>();
}
