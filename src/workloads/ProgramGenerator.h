//===- workloads/ProgramGenerator.h - Spec -> Program ------------*- C++ -*-===//
///
/// \file
/// Expands a BenchmarkSpec into a deterministic Program.  Blocks are built
/// from *statements* — small expression trees emitted depth first, the
/// naive instruction order a stack-machine JIT produces — so that a block
/// with several independent statements has instruction-level parallelism a
/// list scheduler can exploit, while single-statement blocks are serial
/// chains that scheduling cannot improve.  This is the mechanism that
/// makes "does this block benefit from scheduling?" a learnable function
/// of the paper's cheap features.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_WORKLOADS_PROGRAMGENERATOR_H
#define SCHEDFILTER_WORKLOADS_PROGRAMGENERATOR_H

#include "mir/Program.h"
#include "support/Rng.h"
#include "workloads/BenchmarkSpec.h"

namespace schedfilter {

/// Version of the program-synthesis algorithm, part of the corpus-cache
/// key (io/CorpusCache.h).  MUST be bumped by any change that alters what
/// generate() emits for some spec -- new statement kinds, reordered Rng
/// draws, changed expansion rules -- or warm caches will keep serving the
/// old corpus.  Tracing is otherwise a pure function of
/// (spec fingerprint, machine model, this constant).
constexpr uint32_t GeneratorVersion = 1;

/// Deterministic program synthesis from a benchmark profile.
class ProgramGenerator {
public:
  explicit ProgramGenerator(const BenchmarkSpec &Spec) : Spec(Spec) {}

  /// Builds the whole benchmark program.  Calling twice returns identical
  /// programs (all randomness derives from Spec.Seed).
  Program generate() const;

  /// Builds a single block with \p NumStatements statements; exposed for
  /// tests and microbenchmarks that need size-controlled blocks.
  BasicBlock generateBlock(Rng &R, int NumStatements,
                           bool EndWithTerminator) const;

private:
  const BenchmarkSpec &Spec;
};

/// Convenience: generates every program of a suite, in suite order.
std::vector<Program> generateSuite(const std::vector<BenchmarkSpec> &Suite);

} // namespace schedfilter

#endif // SCHEDFILTER_WORKLOADS_PROGRAMGENERATOR_H
