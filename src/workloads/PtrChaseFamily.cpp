//===- workloads/PtrChaseFamily.cpp - Irregular pointer-chasing family -----===//
//
// The "ptrchase" workload family: list walks, tree descents and hash
// probes whose blocks are single serial dependence chains -- each load's
// address is the previous load's result, so there is nothing for a list
// scheduler to overlap no matter how long the block gets.  Long blocks
// are exactly where block length alone would say "schedule"; this family
// exists to punish that heuristic and reward the dependence-height
// features, the population-level opposite of fpkernel.
//
// Chains are hand-emitted (not ProgramGenerator statements): the
// serial-by-construction shape is the family's whole point, so the
// emission controls every def-use edge directly.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadFamily.h"

#include <algorithm>
#include <cmath>

using namespace schedfilter;

namespace {

/// Bump on any change to this family's suite parameters or the chain
/// emission below; invalidates ptrchase corpus-cache entries only.
constexpr uint32_t PtrChaseVersion = 1;

/// Same register windows as the ProgramGenerator: integer live-ins in
/// [0, 24), block-local temporaries upward from 64.
constexpr Reg FirstIntLiveIn = 0;
constexpr Reg NumIntLiveIns = 24;
constexpr Reg FirstTemp = 64;

BenchmarkSpec chaseSpec(const char *Name, const char *Desc, uint64_t Seed) {
  BenchmarkSpec S;
  S.Name = Name;
  S.Description = Desc;
  S.Family = "ptrchase";
  S.Seed = Seed;
  // Reused by the chain emitter: StatementGeoP/MaxStatements shape the
  // chain-length distribution, PeiProb the null-check density, YieldProb
  // the back-edge yield points.  The expression-mix weights are unused.
  S.MinBlocksPerMethod = 2;
  S.MaxBlocksPerMethod = 10;
  S.StatementGeoP = 0.35;
  S.MaxStatements = 14;
  S.TrivialBlockProb = 0.25;
  S.PeiProb = 0.50;
  S.YieldProb = 0.25;
  S.HotnessSkew = 7.0;
  return S;
}

/// Emits one block holding a single serial pointer chain of \p ChainLen
/// loads.  Every load uses the previous link's value as its address, so
/// the block's critical path equals its instruction count.
BasicBlock chaseBlock(const BenchmarkSpec &Spec, Rng &R, int ChainLen) {
  BasicBlock BB("bb", 1);
  if (R.chance(Spec.YieldProb))
    BB.append(Instruction(Opcode::YieldPoint, {}, {}));

  Reg Addr = FirstIntLiveIn + static_cast<Reg>(R.below(NumIntLiveIns));
  Reg NextTemp = FirstTemp;
  for (int I = 0; I != ChainLen; ++I) {
    uint16_t Attrs = 0;
    if (R.chance(Spec.PeiProb)) {
      if (R.chance(0.5))
        BB.append(Instruction(Opcode::NullCheck, {}, {Addr}));
      else
        Attrs = AttrPEI; // un-proven null check folded into the load
    }
    Reg Link = NextTemp++;
    BB.append(Instruction(Opcode::LoadRef, {Link}, {Addr}, Attrs));
    if (R.chance(0.35)) {
      // Field offset / bucket step: still on the chain.
      Reg Stepped = NextTemp++;
      BB.append(Instruction(Opcode::AddImm, {Stepped}, {Link}));
      Addr = Stepped;
    } else {
      Addr = Link;
    }
  }

  // Terminator tests the chain's tail (found the key / hit the null),
  // keeping even the comparison serial.
  double U = R.uniform();
  if (U < 0.80) {
    Reg Cond = NextTemp++;
    BB.append(Instruction(
        Opcode::Cmp, {Cond},
        {Addr, FirstIntLiveIn + static_cast<Reg>(R.below(NumIntLiveIns))}));
    BB.append(Instruction(Opcode::BrCond, {}, {Cond}));
  } else {
    BB.append(Instruction(Opcode::Ret, {}, {}));
  }
  return BB;
}

class PtrChaseFamily : public WorkloadFamily {
public:
  const char *name() const override { return "ptrchase"; }
  const char *description() const override {
    return "irregular pointer chasing: serial load chains scheduling "
           "cannot improve";
  }
  uint32_t version() const override { return PtrChaseVersion; }

  std::vector<BenchmarkSpec> makeBenchmarkSuite() const override {
    std::vector<BenchmarkSpec> Suite;

    // listwalk: long uniform chains, the purest serial case.
    {
      BenchmarkSpec S = chaseSpec(
          "listwalk", "Linked-list traversals with long uniform chains",
          0x9C0701);
      S.StatementGeoP = 0.28;
      Suite.push_back(S);
    }

    // treewalk: shorter chains (log-depth descents), more branches.
    {
      BenchmarkSpec S = chaseSpec(
          "treewalk", "Binary-tree descents: short chains, branch-dense",
          0x9C0702);
      S.StatementGeoP = 0.50;
      S.MaxBlocksPerMethod = 14;
      Suite.push_back(S);
    }

    // hashprobe: mid-length chains with heavy null/bounds checking.
    {
      BenchmarkSpec S = chaseSpec(
          "hashprobe", "Hash-table probe sequences with collision chains",
          0x9C0703);
      S.StatementGeoP = 0.42;
      S.PeiProb = 0.65;
      Suite.push_back(S);
    }

    return Suite;
  }

  Program load(const BenchmarkSpec &Spec) const override {
    Rng Master(Spec.Seed);
    Program P(Spec.Name);

    for (int M = 0; M != Spec.NumMethods; ++M) {
      Rng MethodRng = Master.split();
      Method Meth(Spec.Name + "::walk" + std::to_string(M));
      int NumBlocks = MethodRng.range(Spec.MinBlocksPerMethod,
                                      Spec.MaxBlocksPerMethod);

      for (int B = 0; B != NumBlocks; ++B) {
        int ChainLen =
            MethodRng.chance(Spec.TrivialBlockProb)
                ? 1
                : std::min(Spec.MaxStatements,
                           MethodRng.geometric(Spec.StatementGeoP));
        BasicBlock BB = chaseBlock(Spec, MethodRng, ChainLen);

        // Hotness mirrors the generator's skew, with the *long* chains
        // hottest -- the inner walk loops -- so a length-only filter
        // pays maximal scheduling cost here for zero improvement.
        double U = MethodRng.uniform();
        uint64_t Exec =
            1 + static_cast<uint64_t>(std::pow(U, Spec.HotnessSkew) *
                                      static_cast<double>(Spec.MaxExec));
        if (ChainLen >= 8)
          Exec *= 32;
        else if (ChainLen >= 4)
          Exec *= 6;
        BB.setExecCount(Exec);
        Meth.addBlock(std::move(BB));
      }
      P.addMethod(std::move(Meth));
    }
    return P;
  }
};

} // namespace

std::unique_ptr<WorkloadFamily> schedfilter::makePtrChaseFamily() {
  return std::make_unique<PtrChaseFamily>();
}
