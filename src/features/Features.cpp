//===- features/Features.cpp - Table 1 block features ----------------------===//

#include "features/Features.h"

#include <cassert>

using namespace schedfilter;

const char *schedfilter::getFeatureName(unsigned F) {
  switch (F) {
  case FeatBBLen:
    return "bbLen";
  case FeatBranch:
    return "branches";
  case FeatCall:
    return "calls";
  case FeatLoad:
    return "loads";
  case FeatStore:
    return "stores";
  case FeatReturn:
    return "returns";
  case FeatInteger:
    return "integers";
  case FeatFloat:
    return "floats";
  case FeatSystem:
    return "systems";
  case FeatPEI:
    return "peis";
  case FeatGC:
    return "gcpoints";
  case FeatTS:
    return "tspoints";
  case FeatYield:
    return "yieldpoints";
  default:
    assert(false && "invalid feature index");
    return "?";
  }
}

FeatureVector schedfilter::extractFeatures(const BasicBlock &BB) {
  FeatureVector X{};
  if (BB.empty())
    return X;

  // One pass, counting category membership.
  unsigned Counts[NumFeatures] = {0};
  for (const Instruction &I : BB) {
    uint16_t Cats = I.categories();
    if (Cats & CatBranch)
      ++Counts[FeatBranch];
    if (Cats & CatCall)
      ++Counts[FeatCall];
    if (Cats & CatLoad)
      ++Counts[FeatLoad];
    if (Cats & CatStore)
      ++Counts[FeatStore];
    if (Cats & CatReturn)
      ++Counts[FeatReturn];
    if (Cats & CatIntegerFU)
      ++Counts[FeatInteger];
    if (Cats & CatFloatFU)
      ++Counts[FeatFloat];
    if (Cats & CatSystemFU)
      ++Counts[FeatSystem];
    if (Cats & CatPEI)
      ++Counts[FeatPEI];
    if (Cats & CatGCPoint)
      ++Counts[FeatGC];
    if (Cats & CatThreadSwitch)
      ++Counts[FeatTS];
    if (Cats & CatYieldPoint)
      ++Counts[FeatYield];
  }

  double N = static_cast<double>(BB.size());
  X[FeatBBLen] = N;
  for (unsigned F = FeatBranch; F != NumFeatures; ++F)
    X[F] = static_cast<double>(Counts[F]) / N;
  return X;
}

uint64_t schedfilter::featureExtractionWork(const BasicBlock &BB) {
  return BB.size() + 1;
}
