//===- features/FeatureStats.cpp - Per-class feature summaries --------------===//

#include "features/FeatureStats.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cmath>

using namespace schedfilter;

FeatureStats::FeatureStats(const Dataset &Data) {
  for (unsigned F = 0; F != NumFeatures; ++F)
    for (int C = 0; C != 2; ++C) {
      Stats[F][C].Min = 1e308;
      Stats[F][C].Max = -1e308;
    }
  for (const Instance &I : Data) {
    int C = I.Y == Label::LS ? 1 : 0;
    for (unsigned F = 0; F != NumFeatures; ++F) {
      FeatureSummary &S = Stats[F][C];
      S.Min = std::min(S.Min, I.X[F]);
      S.Max = std::max(S.Max, I.X[F]);
      S.Mean += I.X[F];
      ++S.Count;
    }
  }
  for (unsigned F = 0; F != NumFeatures; ++F)
    for (int C = 0; C != 2; ++C) {
      FeatureSummary &S = Stats[F][C];
      if (S.Count == 0) {
        S.Min = S.Max = 0.0;
      } else {
        S.Mean /= static_cast<double>(S.Count);
      }
    }
}

double FeatureStats::separation(unsigned Feature) const {
  const FeatureSummary &NS = Stats[Feature][0];
  const FeatureSummary &LS = Stats[Feature][1];
  if (NS.Count == 0 || LS.Count == 0)
    return 0.0;
  double Lo = std::min(NS.Min, LS.Min);
  double Hi = std::max(NS.Max, LS.Max);
  if (Hi <= Lo)
    return 0.0;
  return std::fabs(LS.Mean - NS.Mean) / (Hi - Lo);
}

std::vector<unsigned> FeatureStats::rankedFeatures() const {
  std::vector<unsigned> Order(NumFeatures);
  for (unsigned F = 0; F != NumFeatures; ++F)
    Order[F] = F;
  std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    return separation(A) > separation(B);
  });
  return Order;
}

void FeatureStats::print(std::ostream &OS) const {
  TablePrinter T({"Feature", "NS mean", "LS mean", "Separation"});
  for (unsigned F : rankedFeatures())
    T.addRow({getFeatureName(F), formatDouble(forClass(F, Label::NS).Mean, 4),
              formatDouble(forClass(F, Label::LS).Mean, 4),
              formatDouble(separation(F), 3)});
  T.print(OS);
}
