//===- features/FeatureStats.h - Per-class feature summaries ----*- C++ -*-===//
///
/// \file
/// Per-feature, per-class summary statistics over a labeled dataset.
/// Developing features "is more an art than a step-by-step procedure"
/// (§2.1); these summaries are the artist's palette -- they show at a
/// glance which features actually separate LS from NS blocks, and back
/// the inspect_rules example and the feature-ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_FEATURES_FEATURESTATS_H
#define SCHEDFILTER_FEATURES_FEATURESTATS_H

#include "ml/Dataset.h"

#include <ostream>

namespace schedfilter {

/// Summary of one feature within one class.
struct FeatureSummary {
  double Min = 0.0;
  double Max = 0.0;
  double Mean = 0.0;
  size_t Count = 0;
};

/// All features x both classes, plus a crude separability score.
class FeatureStats {
public:
  /// Computes statistics over \p Data.
  explicit FeatureStats(const Dataset &Data);

  const FeatureSummary &forClass(unsigned Feature, Label L) const {
    return Stats[Feature][L == Label::LS ? 1 : 0];
  }

  /// |mean_LS - mean_NS| normalized by the feature's overall range; 0
  /// when the feature is constant.  A quick univariate separability
  /// measure for ranking features.
  double separation(unsigned Feature) const;

  /// Features sorted by descending separation.
  std::vector<unsigned> rankedFeatures() const;

  /// Prints a per-feature table (mean per class, separation).
  void print(std::ostream &OS) const;

private:
  FeatureSummary Stats[NumFeatures][2];
};

} // namespace schedfilter

#endif // SCHEDFILTER_FEATURES_FEATURESTATS_H
