//===- features/FeatureMatrix.h - SoA batch feature extraction ---*- C++ -*-===//
///
/// \file
/// Structure-of-arrays storage for many blocks' feature vectors: one
/// contiguous column per Table 1 feature instead of one 13-double row per
/// block.  The serve hot path streams blocks through extract -> evaluate
/// -> schedule; with columns, the compiled filter's per-condition compare
/// loop (filter/CompiledFilter.h) reads one column sequentially and
/// auto-vectorizes, where the row-major interpreter reloads a scattered
/// double per condition.
///
/// Extraction itself reuses extractFeatures verbatim, so every value
/// stored in a column is bit-identical to the per-block path -- the batch
/// pipeline can never diverge from the one-block-at-a-time pipeline by
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_FEATURES_FEATUREMATRIX_H
#define SCHEDFILTER_FEATURES_FEATUREMATRIX_H

#include "features/Features.h"

#include <vector>

namespace schedfilter {

/// Feature vectors of N blocks, stored column-major (one contiguous
/// array per feature).  Grow-only scratch: clear() keeps capacity, so a
/// matrix reused across batches performs zero steady-state allocations.
class FeatureMatrix {
public:
  /// Number of rows (blocks) currently stored.
  size_t size() const { return NumRows; }
  bool empty() const { return NumRows == 0; }

  /// Drops all rows, keeping column capacity.
  void clear() {
    NumRows = 0;
    for (std::vector<double> &C : Columns)
      C.clear();
  }

  void reserve(size_t N) {
    for (std::vector<double> &C : Columns)
      C.reserve(N);
  }

  /// Appends one feature vector as a new row; returns its row index.
  size_t appendRow(const FeatureVector &X) {
    for (unsigned F = 0; F != NumFeatures; ++F)
      Columns[F].push_back(X[F]);
    return NumRows++;
  }

  /// Extracts \p BB's Table 1 features (bit-identical to extractFeatures)
  /// into a new row; returns its row index.
  size_t appendBlock(const BasicBlock &BB) {
    return appendRow(extractFeatures(BB));
  }

  /// Contiguous values of feature \p F for rows [0, size()).
  const double *column(unsigned F) const { return Columns[F].data(); }

  /// Row \p I gathered back into a feature vector (tests, diagnostics).
  FeatureVector row(size_t I) const {
    FeatureVector X{};
    for (unsigned F = 0; F != NumFeatures; ++F)
      X[F] = Columns[F][I];
    return X;
  }

private:
  size_t NumRows = 0;
  std::vector<double> Columns[NumFeatures];
};

/// Batch extraction pass: clears \p M and appends the features of
/// \p Blocks[0 .. N) in order.  Returns the summed featureExtractionWork
/// of the extracted blocks, so batch callers charge exactly the work units
/// the per-block path would.
uint64_t extractFeaturesBatch(const BasicBlock *const *Blocks, size_t N,
                              FeatureMatrix &M);

} // namespace schedfilter

#endif // SCHEDFILTER_FEATURES_FEATUREMATRIX_H
