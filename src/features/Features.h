//===- features/Features.h - Table 1 block features -------------*- C++ -*-===//
///
/// \file
/// The paper's 13 cheap, static block features (Table 1): the block length
/// plus, for each of 12 possibly-overlapping instruction categories, the
/// *fraction* of the block's instructions falling in that category.
/// Fractions (rather than counts) let the learner generalize over block
/// sizes.  Extraction is a single pass over the instructions — by design it
/// is much cheaper than building the dependence DAG.
///
//===----------------------------------------------------------------------===//

#ifndef SCHEDFILTER_FEATURES_FEATURES_H
#define SCHEDFILTER_FEATURES_FEATURES_H

#include "mir/BasicBlock.h"

#include <array>
#include <cstdint>

namespace schedfilter {

/// Feature indices, in the order of the paper's Table 1.
enum FeatureIndex : unsigned {
  FeatBBLen = 0,  ///< Number of instructions in the block.
  FeatBranch,     ///< Fraction that are branches.
  FeatCall,       ///< Fraction that are calls.
  FeatLoad,       ///< Fraction that are loads.
  FeatStore,      ///< Fraction that are stores.
  FeatReturn,     ///< Fraction that are returns.
  FeatInteger,    ///< Fraction using an integer functional unit.
  FeatFloat,      ///< Fraction using the floating-point unit.
  FeatSystem,     ///< Fraction using the system unit.
  FeatPEI,        ///< Fraction that are potentially excepting.
  FeatGC,         ///< Fraction that are GC points.
  FeatTS,         ///< Fraction that are thread-switch points.
  FeatYield,      ///< Fraction that are yield points.
  NumFeatures
};

/// A block's feature vector.  Index 0 (bbLen) is a count; all others are
/// fractions in [0, 1].
using FeatureVector = std::array<double, NumFeatures>;

/// Short lowercase name of feature \p F as used in rule printouts
/// ("bbLen", "calls", "loads", ...), matching the paper's Figure 4.
const char *getFeatureName(unsigned F);

/// Extracts the Table 1 features of \p BB in one pass.
FeatureVector extractFeatures(const BasicBlock &BB);

/// Deterministic work-unit cost of extracting features for \p BB: one unit
/// per instruction plus a constant.  Mirrors ListScheduler work units so
/// filter cost and scheduling cost are comparable.
uint64_t featureExtractionWork(const BasicBlock &BB);

} // namespace schedfilter

#endif // SCHEDFILTER_FEATURES_FEATURES_H
