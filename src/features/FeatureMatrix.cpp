//===- features/FeatureMatrix.cpp - SoA batch feature extraction ------------===//

#include "features/FeatureMatrix.h"

using namespace schedfilter;

uint64_t schedfilter::extractFeaturesBatch(const BasicBlock *const *Blocks,
                                           size_t N, FeatureMatrix &M) {
  M.clear();
  M.reserve(N);
  uint64_t Work = 0;
  for (size_t I = 0; I != N; ++I) {
    M.appendBlock(*Blocks[I]);
    Work += featureExtractionWork(*Blocks[I]);
  }
  return Work;
}
