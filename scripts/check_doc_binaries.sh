#!/usr/bin/env sh
# Stale-doc guard: every `sf-*` tool and `bench_*` driver named in the
# given markdown files must exist as an executable in the build
# directory, so the docs can never advertise a binary that no longer
# builds (or was renamed without a doc pass).
#
# Usage: scripts/check_doc_binaries.sh BUILD_DIR DOC.md [DOC2.md ...]
set -eu

build=$1
shift

# Documented names that are deliberately not executables.
allowlist="bench_smoke"

status=0
for doc in "$@"; do
  # `name*` is a glob shorthand ("the bench_table* drivers"), not a
  # binary name: capture the optional `*` and drop those tokens.
  for name in $(grep -ohE '(sf-[a-z]+|bench_[a-z0-9_]+)\*?' "$doc" | sort -u); do
    case $name in *\*) continue ;; esac
    skip=0
    for allowed in $allowlist; do
      [ "$name" = "$allowed" ] && skip=1
    done
    [ "$skip" = 1 ] && continue
    if [ ! -x "$build/$name" ]; then
      echo "stale doc: $doc names '$name' but $build/$name is not an executable" >&2
      status=1
    fi
  done
done
if [ "$status" = 0 ]; then
  echo "doc binary check passed: every sf-*/bench_* name in $* exists in $build"
fi
exit $status
