#!/usr/bin/env sh
# Determinism lint: greps result-affecting sources for constructs that
# break the repo's bit-identical-output contract (ROADMAP "deterministic
# at any --jobs").  Each banned pattern either injects wall-clock or OS
# entropy (rand, srand, time(), random_device, wall-clock chrono) or
# iterates in hash order (unordered_map/unordered_set), which varies
# across libstdc++ versions and seeds.
#
# Allowlist: files whose use is audited and does not affect any printed
# result (e.g. the stderr-only wall-clock timer).  Keep it short; add a
# line here only together with a comment in the offending file saying
# why the use is result-neutral.
#
# Usage: scripts/lint_determinism.sh [SRC_DIR ...]
#   (defaults to src tools bench, relative to the repo root)
set -eu

cd "$(dirname "$0")/.."
dirs=${*:-"src tools bench"}

# file:pattern pairs exempted after audit.
allow() {
  case "$1" in
  # Timer.h: steady_clock feeds stderr throughput lines only; every
  # stdout byte is derived from the deterministic simulators.
  src/support/Timer.h:*clock*) return 0 ;;
  # Rng.h: names std::mt19937 in the comment explaining why the repo
  # avoids it; no engine is instantiated.
  src/support/Rng.h:*mt19937*) return 0 ;;
  *) return 1 ;;
  esac
}

# Allowlist audit: every exempted file must still exist and still
# contain the construct it is exempted for.  A stale entry -- the file
# renamed, or the use removed -- would otherwise sit in allow() forever,
# silently pre-approving a future reintroduction nobody audited.
audit_allow() {
  file=$1
  pattern=$2
  if [ ! -f "$file" ]; then
    echo "determinism lint: allowlist names missing file '$file'" >&2
    echo "  (remove its entry from allow() in $0)" >&2
    exit 1
  fi
  if ! grep -qE "$pattern" "$file"; then
    echo "determinism lint: allowlist entry '$file' no longer contains" \
      "'$pattern'" >&2
    echo "  (the audited use is gone; remove its entry from allow())" >&2
    exit 1
  fi
}
audit_allow src/support/Timer.h 'steady_clock'
audit_allow src/support/Rng.h 'mt19937'

status=0
check() {
  pattern=$1
  why=$2
  # -I skips binaries; -n gives file:line for clickable diagnostics.
  hits=$(grep -rInE "$pattern" $dirs --include='*.h' --include='*.cpp' ||
    true)
  [ -z "$hits" ] && return 0
  printf '%s\n' "$hits" | while IFS= read -r hit; do
    file=${hit%%:*}
    if ! allow "$file:$pattern"; then
      echo "determinism lint: $hit" >&2
      echo "  banned: $why" >&2
      echo 1 >"$tmp/failed"
    fi
  done
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

check '\brand\(' 'rand() draws from hidden global state; use support/Rng'
check '\bsrand\(' 'srand() reseeds global state; use support/Rng with a fixed seed'
check 'time\(nullptr\)|time\(NULL\)|time\(0\)' \
  'wall-clock seeding is nondeterministic; derive seeds from names/indices'
check 'random_device' \
  'std::random_device is OS entropy; use support/Rng with a fixed seed'
check 'system_clock|high_resolution_clock|steady_clock' \
  'wall-clock time must never reach stdout; only the audited Timer may use it'
check 'unordered_map|unordered_set' \
  'hash-order iteration varies across platforms; use std::map/sorted vectors'
check 'mt19937|minstd_rand|ranlux|_distribution\b' \
  'std engines/distributions are implementation-defined; use support/Rng'

# Online retrain path audit: the hot-swap contract says every retrain
# trigger, installed version, and registry byte is a pure function of
# the virtual clock and the session seed.  The sources on that path may
# not even include the (globally allowlisted) stderr timer or any time
# header -- a wall-clock read here would desynchronize the swap sequence
# across job counts.
for f in src/ml/OnlineTrainer.h src/ml/OnlineTrainer.cpp \
  src/io/FilterRegistry.h src/io/FilterRegistry.cpp; do
  if [ ! -f "$f" ]; then
    echo "determinism lint: expected online-path file '$f' missing" >&2
    echo "  (update the retrain-path audit in $0 if it moved)" >&2
    exit 1
  fi
  if grep -nE 'support/Timer\.h|<chrono>|<ctime>' "$f" >&2; then
    echo "determinism lint: $f must stay wall-clock-free (retrains run" \
      "on the virtual clock only)" >&2
    exit 1
  fi
done

if [ -f "$tmp/failed" ]; then
  echo "determinism lint FAILED (see above)" >&2
  exit 1
fi
echo "determinism lint: clean ($dirs)"
